// Async pgwire client for simulated services and workload drivers.
//
// Speaks the simple-query protocol: startup, then Query/response cycles
// delimited by ReadyForQuery. Used by the DVWA/GitLab app services (their
// connections flow through RDDR's proxies) and by the pgbench/TPC-H
// drivers.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netsim/network.h"
#include "proto/pgwire/pgwire.h"

namespace rddr::sqldb {

/// Result of one simple-protocol query round trip (possibly several
/// statements' worth of messages, up to ReadyForQuery).
struct QueryOutcome {
  std::vector<std::string> columns;  // last RowDescription
  std::vector<std::vector<std::optional<std::string>>> rows;
  std::vector<std::string> command_tags;
  std::vector<std::string> notices;
  std::optional<std::string> error_sqlstate;
  std::string error_message;
  /// True when the connection dropped before the cycle completed — the
  /// observable effect of RDDR intervening on a pgwire stream.
  bool connection_lost = false;

  bool failed() const { return error_sqlstate.has_value() || connection_lost; }
};

class PgClient {
 public:
  using QueryCallback = std::function<void(QueryOutcome)>;

  /// Opens the connection and performs the startup handshake. `flow_label`
  /// is stamped on the netsim connection (outgoing-proxy grouping).
  PgClient(sim::Network& net, std::string source, const std::string& address,
           const std::string& user, std::string flow_label = "");

  /// Same, with full connect metadata (trace context included — the
  /// accepting proxy/server parents its spans under meta.parent_span).
  PgClient(sim::Network& net, const std::string& address,
           const std::string& user, sim::ConnectMeta meta);
  ~PgClient();
  PgClient(const PgClient&) = delete;
  PgClient& operator=(const PgClient&) = delete;

  /// Queues a query; callbacks fire in order. Safe to call before the
  /// handshake completes.
  void query(const std::string& sql, QueryCallback cb);

  /// Sends Terminate and closes.
  void close();

  bool broken() const { return broken_; }

  /// ParameterStatus values announced by the server (e.g. server_version).
  const std::map<std::string, std::string>& server_params() const {
    return server_params_;
  }

 private:
  void on_data(ByteView data);
  void on_close();
  void maybe_send_next();
  void finish_cycle();

  sim::ConnPtr conn_;
  pg::MessageReader reader_{/*expect_startup=*/false};
  bool ready_ = false;       // saw ReadyForQuery since last send
  bool in_flight_ = false;   // a query cycle is active
  bool broken_ = false;
  std::map<std::string, std::string> server_params_;
  QueryOutcome current_;
  std::deque<std::pair<std::string, QueryCallback>> queue_;
};

}  // namespace rddr::sqldb
