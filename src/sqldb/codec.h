// Shared text codec for sqldb state serialization.
//
// One escaping scheme and one datum encoding, used by every durable text
// form in the repo: full snapshots (snapshot.cc), storage-engine pages and
// WAL records (storage/), and incremental resync deltas. Keeping them in
// one place is what makes "page bytes hash equal across replicas" and
// "snapshot(restore(x)) is a fixed point" the same property.
//
// Formats:
//  - Field escaping: \\ \t \n \r — the formats are line- and
//    tab-delimited, so exactly those characters are encoded.
//  - Datum: N | B:t | B:f | I:<int> | F:<hexfloat> | T:<escaped>.
//    Hexfloat keeps doubles (including ±inf and NaN payload-free nan)
//    bit-exact through the text round trip.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sqldb/value.h"

namespace rddr::sqldb {

std::string escape_field(std::string_view s);
std::string unescape_field(std::string_view s);

std::string encode_datum(const Datum& d);
/// Returns false (out untouched) on malformed input.
bool decode_datum(std::string_view s, Datum* out);

/// Encodes a whole row tab-delimited (the snapshot/page "R" payload).
std::string encode_row(const std::vector<Datum>& row);

}  // namespace rddr::sqldb
