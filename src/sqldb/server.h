// pgwire server: binds a sqldb::Database to a netsim address + host.
//
// One server == one simulated database container. CPU cost per query is
// charged to the host (base cost + per-row-scanned cost), which is what
// drives the paper's Figures 4-6; memory is charged for the container
// footprint plus the resident dataset.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/pgwire/pgwire.h"
#include "sqldb/engine.h"
#include "sqldb/storage/storage_engine.h"

namespace rddr::sqldb {

class SqlServer {
 public:
  struct Options {
    /// Address to listen on, e.g. "minipg-0:5432".
    std::string address;
    /// CPU seconds charged per query, independent of data touched.
    double cpu_per_query = 200e-6;
    /// CPU seconds per row scanned by the executor.
    double cpu_per_row = 0.5e-6;
    /// Container footprint charged to the host at start.
    int64_t base_memory_bytes = 96LL << 20;
    /// Seed for instance-local randomness (backend pid/secret — the
    /// nondeterminism the paper's filter pair must absorb).
    uint64_t rng_seed = 1;
    /// Durable storage engine over this container's volume (optional; the
    /// in-memory-only configuration stays the default). With storage set
    /// the constructor recovers from the volume's durable image when one
    /// exists (deferring listen() by the modeled recovery IO) and
    /// bootstraps it otherwise, each query pays its buffer-miss + WAL
    /// latency, and resident memory is bounded by the frame budget
    /// instead of the full dataset.
    std::shared_ptr<storage::StorageEngine> storage;
    /// Lineage seed forwarded to storage bootstrap: replicas that should
    /// serve each other incremental resync deltas must share it.
    uint64_t lineage_seed = 0;
    /// Extra ParameterStatus pairs announced in the startup handshake
    /// after the standard server_version/server_encoding/application_name
    /// set — how a version build stamps itself (benign divergence the
    /// scenario-factory miner must learn to ignore, paper §IV-B4).
    std::vector<std::pair<std::string, std::string>> startup_params;
    /// Observability sinks (optional, not owned). With a tracer set, each
    /// query becomes a "db.query" span, parented to the trace context the
    /// dialing side put in its ConnectMeta (if any). With metrics set, the
    /// server publishes "<node>.queries" and a "<node>.query_ms" histogram.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  /// Starts listening immediately (without storage) or after the modeled
  /// recovery IO (with storage + durable state). The database may be
  /// shared between servers (not done in practice; each instance owns its
  /// replica).
  SqlServer(sim::Network& net, sim::Host& host, std::shared_ptr<Database> db,
            Options opts);
  ~SqlServer();

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  Database& database() { return *db_; }
  const Options& options() const { return opts_; }

  /// Re-charges host memory from current table sizes (call after bulk
  /// loads that bypass SQL).
  void refresh_memory_charge();

  /// Serializes this instance's database (sqldb/snapshot.h) — the dump
  /// side of replacement warm-up.
  std::string dump_snapshot() const;

  /// Replaces the database contents from a snapshot taken on a healthy
  /// peer and refreshes the host memory charge. Returns false (and leaves
  /// the database cleared) on a malformed snapshot. With storage
  /// attached, the durable image is rebased onto the loaded contents:
  /// pass the source replica's LSN/lineage so incremental resync keeps
  /// working afterwards (0/0 = unknown source, full snapshots only until
  /// the next bootstrap).
  bool load_snapshot(std::string_view snapshot, std::string* error = nullptr,
                     uint64_t source_lsn = 0, uint64_t source_lineage = 0);

  /// The attached storage engine (null without durable storage).
  storage::StorageEngine* storage() { return opts_.storage.get(); }
  const storage::StorageEngine* storage() const {
    return opts_.storage.get();
  }

  /// Result of the constructor's crash recovery (ok=true trivially when
  /// the server bootstrapped fresh or runs without storage).
  const storage::StorageEngine::RecoveryResult& last_recovery() const {
    return recovery_;
  }

  /// Total queries served (diagnostics / tests).
  uint64_t queries_served() const { return queries_served_; }

 private:
  struct Conn;
  void on_accept(sim::ConnPtr conn);
  void on_message(const std::shared_ptr<Conn>& c, const pg::Message& msg);
  void handle_query(const std::shared_ptr<Conn>& c, const std::string& sql);
  void pump_responses(const std::shared_ptr<Conn>& c);

  sim::Network& net_;
  sim::Host& host_;
  std::shared_ptr<Database> db_;
  Options opts_;
  Rng rng_;
  /// Guards simulator events (deferred listen, response IO delays) that
  /// may fire after this server is destroyed.
  std::shared_ptr<bool> alive_;
  storage::StorageEngine::RecoveryResult recovery_;
  bool listening_ = false;
  int64_t charged_memory_ = 0;
  int64_t last_known_rows_ = -1;
  uint64_t queries_served_ = 0;
  obs::Counter* query_counter_ = nullptr;
  obs::Histogram* query_ms_ = nullptr;
};

}  // namespace rddr::sqldb
