// In-memory SQL engine ("minipg") with a second vendor personality
// ("roachdb").
//
// This is the substrate substituting for PostgreSQL / CockroachDB (see
// DESIGN.md). Faithfulness targets, in order:
//   1. The observable behaviour of the two evaluated CVEs:
//      - CVE-2017-7484 (minipg <= 9.2.20): planner selectivity estimation
//        runs a user-defined operator's procedure over column statistics
//        without checking SELECT privilege -> RAISE NOTICE leaks values.
//      - CVE-2019-10130 (minipg 10.0..10.8): same estimation path samples
//        rows that row-level security should hide.
//   2. Vendor diversity: roachdb speaks the same SQL/wire surface but
//      rejects CREATE FUNCTION/OPERATOR (0A000), reports a different
//      version, forces serializable isolation, and returns unordered
//      SELECT results in sorted (not insertion) order.
//   3. Enough SQL for the TPC-H-lite / pgbench-lite workloads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/value.h"

namespace rddr::sqldb {

/// Which latent bugs this engine build carries (derived from version).
struct VulnProfile {
  /// CVE-2017-7484: stats probe runs without a SELECT-privilege check.
  bool stats_leak_ignores_privilege = false;
  /// CVE-2019-10130: stats probe bypasses row-level security.
  bool stats_leak_ignores_rls = false;
};

/// Engine identity: product, version, feature set, row-order behaviour.
struct EngineInfo {
  std::string product;         // "minipg" | "roachdb"
  std::string version;         // "9.2.19", "10.7", "21.1.7", ...
  std::string version_banner;  // full version() / server_version text
  bool supports_udf = true;
  bool forces_serializable = false;
  /// true: unordered SELECTs return insertion order (Postgres heap scans);
  /// false: sorted order (roachdb KV scans) — the paper's "unspecified row
  /// order" deployment hazard.
  bool scan_insertion_order = true;
  VulnProfile vulns;
};

/// minipg personality; vulnerability flags are gated on `version`.
EngineInfo minipg_info(const std::string& version);

/// roachdb personality (no UDFs, serializable-only, sorted scans).
EngineInfo roachdb_info(const std::string& version = "21.1.7");

/// Compares dotted version strings numerically: -1/0/1.
int compare_versions(const std::string& a, const std::string& b);

struct Column {
  std::string name;
  Type type = Type::kText;
};

using Row = std::vector<Datum>;

struct Policy {
  std::string name;
  std::string role;  // empty = applies to all
  ExprPtr using_expr;
};

struct TableData {
  std::string name;
  std::vector<Column> columns;
  std::vector<Row> rows;
  std::string owner = "postgres";
  bool rls_enabled = false;
  std::map<std::string, std::set<std::string>> grants;  // privilege -> users
  std::vector<Policy> policies;
  /// Equality hash indexes: column ordinal -> value-hash -> row ordinals.
  /// Models the B-tree primary-key lookup pgbench depends on.
  std::map<int, std::unordered_multimap<int64_t, size_t>> hash_indexes;

  int find_column(std::string_view col) const;
  /// Approximate resident bytes (row overhead + datum payloads).
  int64_t approx_bytes() const;

  /// Builds (or rebuilds) a hash index on an integer column.
  void build_index(const std::string& column);
  /// Reindexes appended rows starting at `first_new_row`.
  void index_appended(size_t first_new_row);
  /// Rebuilds all indexes (after UPDATE/DELETE row motion).
  void rebuild_indexes();
};

struct FunctionDef {
  std::string name;
  size_t nargs = 0;
  std::optional<std::string> notice_format;
  std::vector<ExprPtr> notice_args;
  ExprPtr return_expr;
};

struct OperatorDef {
  std::string symbol;
  std::string procedure;
  std::string restrict_estimator;  // non-empty => planner estimation hook
};

/// Result of one statement.
struct StatementResult {
  bool is_rowset = false;  // SELECT / EXPLAIN produce rows
  std::vector<std::string> columns;
  std::vector<std::vector<std::optional<std::string>>> rows;  // text values
  std::string command_tag;          // "SELECT 3", "CREATE TABLE", ...
  std::vector<std::string> notices; // RAISE NOTICE output (pre-filtering)
  std::optional<std::string> error_sqlstate;
  std::string error_message;
  int64_t rows_scanned = 0;

  bool failed() const { return error_sqlstate.has_value(); }
};

struct ExecResult {
  std::vector<StatementResult> statements;
  int64_t rows_scanned = 0;  // total, for the CPU cost model
};

/// Observer for engine state changes, implemented by the storage engine
/// (sqldb/storage/) to maintain page-level dirty tracking and the buffer
/// pool without the executor knowing about pages. Callbacks fire at the
/// mutation site, inside statement execution; all default to no-ops.
/// Mutation callbacks also fire for the already-applied part of a
/// statement that later fails (the engine keeps partial effects), so a
/// listener sees exactly what the table now contains.
class MutationListener {
 public:
  virtual ~MutationListener() = default;
  /// Rows [first_new_row, table.rows.size()) were appended.
  virtual void on_rows_appended(const TableData& table, size_t first_new_row) {
    (void)table;
    (void)first_new_row;
  }
  /// Row `ordinal` was updated in place.
  virtual void on_row_updated(const TableData& table, size_t ordinal) {
    (void)table;
    (void)ordinal;
  }
  /// DELETE compaction: rows from `first_changed` onward moved or went
  /// away; the table previously held `old_row_count` rows.
  virtual void on_rows_compacted(const TableData& table, size_t first_changed,
                                 size_t old_row_count) {
    (void)table;
    (void)first_changed;
    (void)old_row_count;
  }
  virtual void on_table_created(const TableData& table) { (void)table; }
  virtual void on_table_dropped(const std::string& name) { (void)name; }
  /// Per-table catalog change: grants, RLS flag, policies, indexes.
  virtual void on_catalog_changed(const TableData& table) { (void)table; }
  /// Database-level catalog change: functions / operators.
  virtual void on_schema_changed() {}
  /// A scan visited `table`: `candidates` lists the row ordinals when an
  /// index narrowed the scan, null for a full heap scan. Read-only (does
  /// not advance the mutation epoch).
  virtual void on_scan(const TableData& table,
                       const std::vector<size_t>* candidates) {
    (void)table;
    (void)candidates;
  }
};

/// Shared database state (one per simulated server instance).
class Database {
 public:
  explicit Database(EngineInfo info);

  const EngineInfo& info() const { return info_; }

  /// Bulk-load API (workload generators): creates owned by `postgres`.
  TableData* create_table(const std::string& name,
                          std::vector<Column> columns);
  TableData* find_table(const std::string& name);
  const TableData* find_table(const std::string& name) const;

  /// Approximate resident size of all tables (memory model).
  int64_t approx_bytes() const;
  int64_t total_rows() const;

  const std::map<std::string, FunctionDef>& functions() const {
    return functions_;
  }
  const std::map<std::string, OperatorDef>& operators() const {
    return operators_;
  }

  /// Read access for the snapshot writer (sqldb/snapshot.h).
  const std::map<std::string, TableData>& tables() const { return tables_; }

  /// Attaches/detaches the (single, not owned) mutation listener.
  void set_mutation_listener(MutationListener* listener) {
    listener_ = listener;
  }
  MutationListener* mutation_listener() const { return listener_; }

  /// Monotonic count of state mutations. The pgwire server compares it
  /// around Session::execute to decide whether a statement script must be
  /// logged to the WAL. Scans do not advance it.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  friend class Session;
  friend bool restore_database(Database& db, std::string_view snapshot,
                               std::string* error);

  void note_rows_appended(const TableData& t, size_t first) {
    ++mutation_epoch_;
    if (listener_) listener_->on_rows_appended(t, first);
  }
  void note_row_updated(const TableData& t, size_t ordinal) {
    ++mutation_epoch_;
    if (listener_) listener_->on_row_updated(t, ordinal);
  }
  void note_rows_compacted(const TableData& t, size_t first, size_t old_rows) {
    ++mutation_epoch_;
    if (listener_) listener_->on_rows_compacted(t, first, old_rows);
  }
  void note_table_created(const TableData& t) {
    ++mutation_epoch_;
    if (listener_) listener_->on_table_created(t);
  }
  void note_table_dropped(const std::string& name) {
    ++mutation_epoch_;
    if (listener_) listener_->on_table_dropped(name);
  }
  void note_catalog_changed(const TableData& t) {
    ++mutation_epoch_;
    if (listener_) listener_->on_catalog_changed(t);
  }
  void note_schema_changed() {
    ++mutation_epoch_;
    if (listener_) listener_->on_schema_changed();
  }
  void note_scan(const TableData& t, const std::vector<size_t>* candidates) {
    if (listener_) listener_->on_scan(t, candidates);
  }

  EngineInfo info_;
  std::map<std::string, TableData> tables_;
  std::map<std::string, FunctionDef> functions_;
  std::map<std::string, OperatorDef> operators_;
  MutationListener* listener_ = nullptr;
  uint64_t mutation_epoch_ = 0;
};

/// One client session: user identity + session settings. Sessions are
/// cheap; the pgwire server creates one per connection.
class Session {
 public:
  Session(Database& db, std::string user);

  /// Parses and executes a script (the simple-protocol behaviour: stop at
  /// the first failing statement).
  ExecResult execute(std::string_view sql);

  const std::string& user() const { return user_; }
  bool is_superuser() const { return user_ == "postgres"; }

  /// Current value of a session setting ("" when unset).
  std::string setting(const std::string& name) const;

 private:
  StatementResult run_statement(const Statement& st);
  StatementResult run_select(const SelectStmt& sel, bool explain_only,
                             bool costs_off);
  StatementResult run_insert(const InsertStmt& ins);
  StatementResult run_update(const UpdateStmt& up);
  StatementResult run_delete(const DeleteStmt& del);
  StatementResult run_create_table(const CreateTableStmt& ct);
  StatementResult run_drop_table(const DropTableStmt& d);
  StatementResult run_create_function(const CreateFunctionStmt& fn);
  StatementResult run_create_operator(const CreateOperatorStmt& op);
  StatementResult run_set(const SetStmt& set);
  StatementResult run_grant(const GrantStmt& g);
  StatementResult run_alter_rls(const AlterTableRlsStmt& a);
  StatementResult run_create_policy(const CreatePolicyStmt& p);

  Database& db_;
  std::string user_;
  std::map<std::string, std::string> settings_;
};

}  // namespace rddr::sqldb
