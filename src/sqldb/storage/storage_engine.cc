#include "sqldb/storage/storage_engine.h"

#include <algorithm>

#include "common/strutil.h"
#include "sqldb/codec.h"
#include "sqldb/snapshot.h"
#include "sqldb/storage/page.h"

namespace rddr::sqldb::storage {

namespace {

constexpr int kReadRetries = 3;

bool set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

StorageEngine::StorageEngine(sim::Simulator& sim,
                             std::shared_ptr<sim::BlockDevice> data,
                             std::shared_ptr<sim::BlockDevice> wal,
                             StorageOptions opts)
    : sim_(sim),
      data_(std::move(data)),
      wal_dev_(std::move(wal)),
      opts_(opts),
      wal_(wal_dev_),
      pool_(opts.frame_budget) {}

StorageEngine::~StorageEngine() { detach(); }

void StorageEngine::detach() {
  if (db_) db_->set_mutation_listener(nullptr);
  db_ = nullptr;
  if (ckpt_.step_event) sim_.cancel(ckpt_.step_event);
  ckpt_ = Checkpoint{};
  if (flush_event_) sim_.cancel(flush_event_);
  flush_event_ = 0;
}

// ---- Catalog text ------------------------------------------------------

std::string StorageEngine::catalog_lines(const Database& db) const {
  // Byte-for-byte the snapshot format (sqldb/snapshot.cc) minus the "R"
  // row records — restore_database parses it directly.
  std::string out;
  for (const auto& [name, t] : db.tables()) {
    out += "T " + escape_field(name) + "\t" + escape_field(t.owner) + "\t" +
           (t.rls_enabled ? "1" : "0") + "\n";
    for (const auto& c : t.columns)
      out += strformat("C %s\t%d\n", escape_field(c.name).c_str(),
                       static_cast<int>(c.type));
    for (const auto& [priv, users] : t.grants)
      for (const auto& u : users)
        out += "G " + escape_field(priv) + "\t" + escape_field(u) + "\n";
    for (const auto& p : t.policies)
      out += "P " + escape_field(p.name) + "\t" + escape_field(p.role) + "\t" +
             escape_field(p.using_expr ? p.using_expr->to_string() : "") +
             "\n";
    for (const auto& [col, index] : t.hash_indexes) {
      (void)index;
      if (col >= 0 && static_cast<size_t>(col) < t.columns.size())
        out += "X " + escape_field(t.columns[static_cast<size_t>(col)].name) +
               "\n";
    }
  }
  for (const auto& [name, fn] : db.functions()) {
    out += "F " + escape_field(name) +
           strformat("\t%zu\t%d\t", fn.nargs, fn.notice_format ? 1 : 0) +
           escape_field(fn.notice_format ? *fn.notice_format : "") +
           strformat("\t%zu", fn.notice_args.size());
    for (const auto& a : fn.notice_args)
      out += "\t" + escape_field(a->to_string());
    out += strformat("\t%d\t", fn.return_expr ? 1 : 0) +
           escape_field(fn.return_expr ? fn.return_expr->to_string() : "") +
           "\n";
  }
  for (const auto& [symbol, op] : db.operators()) {
    out += "O " + escape_field(symbol) + "\t" + escape_field(op.procedure) +
           "\t" + escape_field(op.restrict_estimator) + "\n";
  }
  return out;
}

// ---- Root manifest -----------------------------------------------------

Bytes StorageEngine::encode_root(const RootImage& root) const {
  std::string body;
  for (const auto& line : root.catalog_lines) body += line + "\n";
  for (const auto& m : root.tables) {
    body += strformat("M\t%s\t%llu\t%zu\t", escape_field(m.name).c_str(),
                      static_cast<unsigned long long>(m.nrows),
                      m.blocks.size());
    for (size_t i = 0; i < m.blocks.size(); ++i) {
      if (i) body += ' ';
      body += std::to_string(m.blocks[i]);
    }
    body += '\n';
  }
  std::string head = strformat(
      "RDDRROOT 1\t%llu\t%llu\t%s\t%llu\t%llu\t%zu\t%zu",
      static_cast<unsigned long long>(root.seq),
      static_cast<unsigned long long>(root.lsn), hex64(root.lineage).c_str(),
      static_cast<unsigned long long>(root.next_free_block),
      static_cast<unsigned long long>(root.rows_per_page),
      root.catalog_lines.size(), root.tables.size());
  uint64_t sum = fnv1a64(head) ^ fnv1a64(body);
  return head + "\t" + hex64(sum) + "\n" + body;
}

std::optional<StorageEngine::RootImage> StorageEngine::decode_root(
    ByteView bytes) const {
  size_t nl = bytes.find('\n');
  if (nl == ByteView::npos) return std::nullopt;
  std::string_view head = bytes.substr(0, nl);
  std::string_view body = bytes.substr(nl + 1);
  auto fields = split(head, '\t');
  if (fields.size() != 9 || fields[0] != "RDDRROOT 1") return std::nullopt;
  auto sum = parse_hex64(fields[8]);
  size_t last_tab = head.rfind('\t');
  if (!sum || (fnv1a64(head.substr(0, last_tab)) ^ fnv1a64(body)) != *sum)
    return std::nullopt;
  auto seq = parse_i64(fields[1]);
  auto lsn = parse_i64(fields[2]);
  auto lineage = parse_hex64(fields[3]);
  auto next_free = parse_i64(fields[4]);
  auto rpp = parse_i64(fields[5]);
  auto ncat = parse_i64(fields[6]);
  auto ntables = parse_i64(fields[7]);
  if (!seq || !lsn || !lineage || !next_free || !rpp || !ncat || !ntables ||
      *seq < 0 || *lsn < 0 || *next_free < 2 || *rpp < 1 || *ncat < 0 ||
      *ntables < 0)
    return std::nullopt;
  RootImage root;
  root.seq = static_cast<uint64_t>(*seq);
  root.lsn = static_cast<uint64_t>(*lsn);
  root.lineage = *lineage;
  root.next_free_block = static_cast<uint64_t>(*next_free);
  root.rows_per_page = static_cast<uint64_t>(*rpp);
  auto lines = split_lines(body);
  // split_lines may yield a trailing empty line for "a\n" inputs — trim.
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() !=
      static_cast<size_t>(*ncat) + static_cast<size_t>(*ntables))
    return std::nullopt;
  for (int64_t i = 0; i < *ncat; ++i)
    root.catalog_lines.push_back(lines[static_cast<size_t>(i)]);
  for (int64_t i = 0; i < *ntables; ++i) {
    const std::string& line = lines[static_cast<size_t>(*ncat + i)];
    auto mf = split(line, '\t');
    if (mf.size() != 5 || mf[0] != "M") return std::nullopt;
    RootImage::TableMap m;
    m.name = unescape_field(mf[1]);
    auto nrows = parse_i64(mf[2]);
    auto np = parse_i64(mf[3]);
    if (!nrows || !np || *nrows < 0 || *np < 0) return std::nullopt;
    m.nrows = static_cast<uint64_t>(*nrows);
    if (*np > 0) {
      auto bs = split(mf[4], ' ');
      if (bs.size() != static_cast<size_t>(*np)) return std::nullopt;
      for (const auto& b : bs) {
        auto blk = parse_i64(b);
        if (!blk || *blk < 2) return std::nullopt;
        m.blocks.push_back(static_cast<uint64_t>(*blk));
      }
    } else if (!mf[4].empty()) {
      return std::nullopt;
    }
    root.tables.push_back(std::move(m));
  }
  return root;
}

std::optional<StorageEngine::RootImage> StorageEngine::read_root(
    sim::Time* io) const {
  std::optional<RootImage> best;
  for (uint64_t slot = 0; slot < 2; ++slot) {
    sim::BlockDevice::ReadResult r;
    for (int i = 0; i < kReadRetries; ++i) {
      r = data_->read(slot);
      if (io) *io += r.latency;
      if (r.ok || !r.exists) break;
    }
    if (!r.ok) continue;
    auto root = decode_root(r.data);
    if (!root) continue;
    if (!best || root->seq > best->seq) best = std::move(root);
  }
  return best;
}

bool StorageEngine::has_durable_state() const { return read_root(nullptr).has_value(); }

// ---- Table bookkeeping -------------------------------------------------

StorageEngine::TableState& StorageEngine::ensure_table(const TableData& t) {
  TableState& ts = tables_[t.name];
  uint64_t np = npages(t.rows.size());
  if (ts.page_lsns.size() < np) {
    ts.page_lsns.resize(np, 0);
    ts.blocks.resize(np, 0);
  }
  return ts;
}

void StorageEngine::mark_page(const TableData& t, uint64_t page) {
  TableState& ts = ensure_table(t);
  if (page >= ts.page_lsns.size()) {
    ts.page_lsns.resize(page + 1, 0);
    ts.blocks.resize(page + 1, 0);
  }
  ts.page_lsns[page] = effective_lsn();
  pool_.mark_dirty({t.name, page}, ts.avg_page_bytes);
  statement_mutated_ = true;
  // Dirty pressure: every frame pinned means the working set outgrew the
  // budget — checkpoint now to unpin.
  if (pool_.dirty_frames() > pool_.budget()) maybe_start_checkpoint(true);
}

void StorageEngine::adopt_tables(uint64_t page_lsn) {
  tables_.clear();
  if (!db_) return;
  for (const auto& [name, t] : db_->tables()) {
    TableState ts;
    uint64_t np = npages(t.rows.size());
    ts.page_lsns.assign(np, page_lsn);
    ts.blocks.assign(np, 0);
    if (!t.rows.empty()) {
      uint64_t per_row = static_cast<uint64_t>(
          t.approx_bytes() / static_cast<int64_t>(t.rows.size()));
      ts.avg_page_bytes = std::max<uint64_t>(256, per_row * opts_.rows_per_page);
    }
    tables_[name] = std::move(ts);
  }
}

void StorageEngine::reclaim_all_blocks() {
  for (auto& [name, ts] : tables_)
    for (uint64_t b : ts.blocks)
      if (b) stale_blocks_.push_back(b);
}

// ---- Lifecycle ---------------------------------------------------------

sim::Time StorageEngine::bootstrap(Database& db, uint64_t lineage_seed) {
  detach();
  db_ = &db;
  db.set_mutation_listener(this);
  lsn_ = 0;
  checkpointed_lsn_ = 0;
  catalog_lsn_ = 0;
  root_seq_ = 0;
  next_free_block_ = 2;
  stale_blocks_.clear();
  pool_.clear();
  lineage_id_ =
      fnv1a64(snapshot_database(db)) ^ (lineage_seed * 0x9e3779b97f4a7c15ULL);
  if (lineage_id_ == 0) lineage_id_ = 1;
  adopt_tables(0);
  sim::Time io = wal_.reset(0);
  maybe_start_checkpoint(/*force=*/true);
  return io;
}

StorageEngine::RecoveryResult StorageEngine::recover(Database& db) {
  RecoveryResult out;
  counters_.recoveries++;
  detach();
  db_ = &db;

  auto fail = [&](const std::string& why) -> RecoveryResult& {
    out.ok = false;
    out.error = why;
    out.trace += "recovery failed: " + why + "\n";
    counters_.recovery_failures++;
    // The instance restarts empty (peer-resync territory): cleared
    // database, zero lineage so no delta can be built against it.
    restore_database(db, "RDDRSNAP 1\n");
    db.set_mutation_listener(this);
    tables_.clear();
    pool_.clear();
    lsn_ = 0;
    checkpointed_lsn_ = 0;
    lineage_id_ = 0;
    out.io_time += wal_.reset(0);
    return out;
  };

  auto root = read_root(&out.io_time);
  if (!root) return fail("no valid root manifest");
  root_seq_ = root->seq;
  lineage_id_ = root->lineage;
  next_free_block_ = root->next_free_block;
  opts_.rows_per_page = root->rows_per_page;
  lsn_ = root->lsn;
  checkpointed_lsn_ = root->lsn;
  catalog_lsn_ = root->lsn;
  out.trace += strformat("root seq=%llu lsn=%llu tables=%zu\n",
                         static_cast<unsigned long long>(root->seq),
                         static_cast<unsigned long long>(root->lsn),
                         root->tables.size());

  // Catalog first (tables, grants, policies, index defs, UDFs/operators),
  // then heap pages, then the WAL tail.
  std::string catalog_snap = "RDDRSNAP 1\n";
  for (const auto& line : root->catalog_lines) catalog_snap += line + "\n";
  std::string err;
  if (!restore_database(db, catalog_snap, &err))
    return fail("catalog restore: " + err);

  tables_.clear();
  pool_.clear();
  stale_blocks_.clear();
  for (const auto& m : root->tables) {
    TableData* t = db.find_table(m.name);
    if (!t) return fail("root names unknown table " + m.name);
    TableState ts;
    ts.blocks = m.blocks;
    ts.page_lsns.assign(m.blocks.size(), 0);
    for (size_t p = 0; p < m.blocks.size(); ++p) {
      sim::BlockDevice::ReadResult r;
      for (int i = 0; i < kReadRetries; ++i) {
        r = data_->read(m.blocks[p]);
        out.io_time += r.latency;
        if (r.ok || !r.exists) break;
      }
      if (!r.ok)
        return fail(strformat("page %s/%zu unreadable", m.name.c_str(), p));
      auto img = decode_page(r.data);
      if (!img || img->table != m.name || img->page_no != p)
        return fail(strformat("page %s/%zu corrupt", m.name.c_str(), p));
      for (auto& row : img->rows) t->rows.push_back(std::move(row));
      ts.page_lsns[p] = img->page_lsn;
      ts.avg_page_bytes = std::max<uint64_t>(256, r.data.size());
      counters_.pages_read++;
      out.pages_read++;
      pool_.touch({m.name, p}, ts.avg_page_bytes);
      out.trace += strformat("page %s/%zu lsn=%llu rows=%zu\n",
                             m.name.c_str(), p,
                             static_cast<unsigned long long>(img->page_lsn),
                             img->rows.size());
    }
    if (t->rows.size() != m.nrows)
      return fail("row count mismatch for " + m.name);
    if (!t->hash_indexes.empty()) t->rebuild_indexes();
    tables_[m.name] = std::move(ts);
  }

  // Redo: replay the committed statement tail through the engine. The
  // listener is attached first so replayed mutations re-mark page LSNs.
  auto wrec = wal_.recover();
  out.io_time += wrec.io;
  if (!wrec.ok) return fail(wrec.error);
  out.wal_torn = wrec.torn;
  db.set_mutation_listener(this);
  replaying_ = true;
  for (const auto& rec : wrec.records) {
    if (rec.lsn <= lsn_) continue;
    if (rec.lsn != lsn_ + 1) break;  // gap: stop at the valid prefix
    replay_lsn_ = rec.lsn;
    Session session(db, rec.user);
    session.execute(rec.sql);
    lsn_ = rec.lsn;
    counters_.wal_records_replayed++;
    counters_.wal_bytes_replayed += rec.sql.size();
    out.wal_records_replayed++;
    out.wal_bytes_replayed += rec.sql.size();
    out.trace += strformat("redo lsn=%llu user=%s bytes=%zu\n",
                           static_cast<unsigned long long>(rec.lsn),
                           rec.user.c_str(), rec.sql.size());
  }
  replaying_ = false;
  statement_mutated_ = false;
  pending_io_ = 0;
  wal_records_since_ckpt_ = lsn_ - checkpointed_lsn_;
  out.trace += strformat("recovered lsn=%llu pages=%llu redo=%llu torn=%d\n",
                         static_cast<unsigned long long>(lsn_),
                         static_cast<unsigned long long>(out.pages_read),
                         static_cast<unsigned long long>(
                             out.wal_records_replayed),
                         out.wal_torn ? 1 : 0);
  out.ok = true;
  return out;
}

sim::Time StorageEngine::rebase(uint64_t source_lsn, uint64_t source_lineage) {
  if (!db_) return 0;
  reclaim_all_blocks();
  pool_.clear();
  lsn_ = source_lsn;
  catalog_lsn_ = source_lsn;
  lineage_id_ = source_lineage;
  adopt_tables(source_lsn);
  sim::Time io = wal_.reset(source_lsn);
  maybe_start_checkpoint(/*force=*/true);
  return io;
}

// ---- Commit path -------------------------------------------------------

void StorageEngine::begin_statement() {
  pending_io_ = 0;
  statement_mutated_ = false;
}

sim::Time StorageEngine::end_statement(const std::string& user,
                                       std::string_view sql) {
  sim::Time io = pending_io_;
  pending_io_ = 0;
  if (!statement_mutated_ || !db_) return io;
  statement_mutated_ = false;
  lsn_++;
  counters_.wal_records_appended++;
  counters_.wal_bytes_appended += sql.size();
  wal_records_since_ckpt_++;
  io += wal_.append(WalRecord{lsn_, user, std::string(sql)});
  if (opts_.wal_flush_interval == 0) {
    // Commit-synchronous durability: the sync cost lands on this query.
    io += wal_.flush();
    counters_.wal_flushes++;
  } else {
    schedule_flush();
  }
  maybe_start_checkpoint(/*force=*/false);
  return io;
}

void StorageEngine::schedule_flush() {
  if (flush_event_ || opts_.wal_flush_interval <= 0) return;
  flush_event_ = sim_.schedule(opts_.wal_flush_interval, [this] {
    flush_event_ = 0;
    if (!wal_.has_staged()) return;
    wal_.flush();  // group commit: background IO, charged to no query
    counters_.wal_flushes++;
  });
}

// ---- Checkpoint --------------------------------------------------------

void StorageEngine::maybe_start_checkpoint(bool force) {
  if (ckpt_.active || !db_) return;
  if (!force && wal_records_since_ckpt_ < opts_.checkpoint_every_records)
    return;
  counters_.checkpoints_started++;
  // The WAL must be durable through the checkpoint LSN before any page
  // that includes those effects can land.
  if (wal_.has_staged()) {
    wal_.flush();
    counters_.wal_flushes++;
  }
  ckpt_.active = true;
  ckpt_.seq = root_seq_ + 1;
  ckpt_.target_lsn = lsn_;
  ckpt_.writes.clear();
  ckpt_.new_blocks.clear();
  ckpt_.next_write = 0;
  ckpt_.free_after = std::move(stale_blocks_);
  stale_blocks_.clear();

  RootImage root;
  root.seq = ckpt_.seq;
  root.lsn = lsn_;
  root.lineage = lineage_id_;
  root.rows_per_page = opts_.rows_per_page;
  for (const auto& line : split_lines(catalog_lines(*db_)))
    if (!line.empty()) root.catalog_lines.push_back(line);
  // Capture page images NOW (consistent at target_lsn); the device
  // writes are spread over the steps that follow.
  for (const auto& [name, t] : db_->tables()) {
    TableState& ts = ensure_table(t);
    RootImage::TableMap m;
    m.name = name;
    m.nrows = t.rows.size();
    m.blocks = ts.blocks;
    uint64_t np = npages(t.rows.size());
    for (uint64_t p = 0; p < np; ++p) {
      if (ts.blocks[p] != 0 && ts.page_lsns[p] <= checkpointed_lsn_) continue;
      Bytes img = encode_page(t, p, ts.page_lsns[p],
                              static_cast<size_t>(p * opts_.rows_per_page),
                              static_cast<size_t>(opts_.rows_per_page));
      ts.avg_page_bytes = std::max<uint64_t>(256, img.size());
      uint64_t blk = next_free_block_++;
      if (ts.blocks[p]) ckpt_.free_after.push_back(ts.blocks[p]);
      m.blocks[p] = blk;
      ckpt_.new_blocks.emplace_back(BufferPool::Key{name, p}, blk);
      ckpt_.writes.emplace_back(BufferPool::Key{name, p}, std::move(img));
    }
    root.tables.push_back(std::move(m));
  }
  root.next_free_block = next_free_block_;
  ckpt_.root_image = encode_root(root);
  ckpt_.step_event =
      sim_.schedule(opts_.checkpoint_step_interval, [this] { checkpoint_step(); });
}

void StorageEngine::checkpoint_step() {
  ckpt_.step_event = 0;
  if (!ckpt_.active) return;
  size_t budget = opts_.checkpoint_pages_per_step ? opts_.checkpoint_pages_per_step : 1;
  size_t done = 0;
  while (ckpt_.next_write < ckpt_.writes.size() && done < budget) {
    auto& [key, img] = ckpt_.writes[ckpt_.next_write];
    data_->write(ckpt_.new_blocks[ckpt_.next_write].second, std::move(img));
    counters_.pages_written++;
    ckpt_.next_write++;
    done++;
  }
  if (ckpt_.next_write < ckpt_.writes.size()) {
    ckpt_.step_event = sim_.schedule(opts_.checkpoint_step_interval,
                                     [this] { checkpoint_step(); });
    return;
  }
  finish_checkpoint();
}

void StorageEngine::finish_checkpoint() {
  // Ordering is the whole point: pages durable, then the new root, then
  // the old generation is reclaimed. A crash anywhere in between leaves
  // either the old root (valid, longer redo) or the new one (valid).
  data_->sync();
  data_->write(ckpt_.seq % 2, std::move(ckpt_.root_image));
  data_->sync();
  root_seq_ = ckpt_.seq;
  checkpointed_lsn_ = ckpt_.target_lsn;
  for (const auto& [key, blk] : ckpt_.new_blocks) {
    auto it = tables_.find(key.first);
    if (it != tables_.end() && key.second < it->second.blocks.size()) {
      it->second.blocks[key.second] = blk;
      if (it->second.page_lsns[key.second] <= ckpt_.target_lsn)
        pool_.mark_clean(key);
    } else {
      // Dropped or shrunk during the window: the new root references the
      // block (consistent at target_lsn) but the live table moved on —
      // reclaim after the NEXT checkpoint supersedes this root.
      stale_blocks_.push_back(blk);
    }
  }
  for (uint64_t b : ckpt_.free_after) data_->trim(b);
  wal_.truncate_through(ckpt_.target_lsn, opts_.wal_keep_records);
  wal_records_since_ckpt_ = lsn_ - checkpointed_lsn_;
  counters_.checkpoints_completed++;
  ckpt_.active = false;
  ckpt_.writes.clear();
  ckpt_.new_blocks.clear();
  ckpt_.free_after.clear();
  ckpt_.root_image.clear();
}

// ---- Incremental resync ------------------------------------------------

std::optional<std::string> StorageEngine::build_delta(
    uint64_t target_lsn, uint64_t target_lineage, DeltaStats* stats) const {
  if (!db_ || lineage_id_ == 0 || target_lineage == 0 ||
      target_lineage != lineage_id_ || target_lsn > lsn_)
    return std::nullopt;
  DeltaStats st;
  std::string body;
  if (auto recs = wal_.records_after(target_lsn)) {
    st.mode = "wal";
    for (const auto& rec : *recs) {
      body += strformat("W\t%llu\t%s\t%s\n",
                        static_cast<unsigned long long>(rec.lsn),
                        escape_field(rec.user).c_str(),
                        escape_field(rec.sql).c_str());
      st.wal_records++;
      st.wal_bytes += rec.sql.size();
    }
  } else {
    st.mode = "pages";
    std::string cat = catalog_lines(*db_);
    auto catv = split_lines(cat);
    while (!catv.empty() && catv.back().empty()) catv.pop_back();
    body += strformat("CAT\t%zu\n", catv.size());
    for (const auto& line : catv) body += line + "\n";
    for (const auto& [name, t] : db_->tables()) {
      body += "S\t" + escape_field(name) + "\t" +
              std::to_string(t.rows.size()) + "\n";
      auto it = tables_.find(name);
      uint64_t np = npages(t.rows.size());
      for (uint64_t p = 0; p < np; ++p) {
        uint64_t plsn =
            (it != tables_.end() && p < it->second.page_lsns.size())
                ? it->second.page_lsns[p]
                : lsn_;
        if (plsn <= target_lsn) continue;
        size_t first = static_cast<size_t>(p * opts_.rows_per_page);
        size_t n = std::min<size_t>(opts_.rows_per_page,
                                    t.rows.size() - first);
        body += strformat("P\t%s\t%llu\t%llu\t%zu\n",
                          escape_field(name).c_str(),
                          static_cast<unsigned long long>(p),
                          static_cast<unsigned long long>(plsn), n);
        for (size_t i = 0; i < n; ++i)
          body += "R\t" + encode_row(t.rows[first + i]) + "\n";
        st.pages_shipped++;
      }
    }
  }
  std::string head = strformat(
      "RDDRDELTA 1\t%s\t%llu\t%llu\t%s", st.mode,
      static_cast<unsigned long long>(target_lsn),
      static_cast<unsigned long long>(lsn_), hex64(lineage_id_).c_str());
  uint64_t sum = fnv1a64(head) ^ fnv1a64(body);
  std::string out = head + "\t" + hex64(sum) + "\n" + body;
  st.bytes = out.size();
  counters_.deltas_built++;
  if (stats) *stats = st;
  return out;
}

bool StorageEngine::apply_delta(std::string_view delta, DeltaStats* stats,
                                std::string* error) {
  if (!db_) return set_error(error, "delta: no attached database");
  size_t nl = delta.find('\n');
  if (nl == std::string_view::npos) return set_error(error, "delta: no header");
  std::string_view head = delta.substr(0, nl);
  std::string_view body = delta.substr(nl + 1);
  auto fields = split(head, '\t');
  if (fields.size() != 6 || fields[0] != "RDDRDELTA 1")
    return set_error(error, "delta: bad header");
  auto sum = parse_hex64(fields[5]);
  size_t last_tab = head.rfind('\t');
  if (!sum || (fnv1a64(head.substr(0, last_tab)) ^ fnv1a64(body)) != *sum)
    return set_error(error, "delta: checksum mismatch");
  const std::string& mode = fields[1];
  auto from = parse_i64(fields[2]);
  auto to = parse_i64(fields[3]);
  auto lineage = parse_hex64(fields[4]);
  if (!from || !to || !lineage || *from < 0 || *to < *from)
    return set_error(error, "delta: bad header fields");
  if (*lineage == 0 || *lineage != lineage_id_)
    return set_error(error, "delta: lineage mismatch");
  if (static_cast<uint64_t>(*from) != lsn_)
    return set_error(error, strformat("delta: built for lsn %lld, at %llu",
                                      static_cast<long long>(*from),
                                      static_cast<unsigned long long>(lsn_)));
  DeltaStats st;
  st.bytes = delta.size();

  if (mode == "wal") {
    st.mode = "wal";
    replaying_ = true;
    for (const auto& line : split_lines(body)) {
      if (line.empty()) continue;
      auto wf = split(line, '\t');
      if (wf.size() != 4 || wf[0] != "W") {
        replaying_ = false;
        return set_error(error, "delta: bad wal line");
      }
      auto lsn = parse_i64(wf[1]);
      if (!lsn || static_cast<uint64_t>(*lsn) != lsn_ + 1) {
        replaying_ = false;
        return set_error(error, "delta: wal lsn discontinuity");
      }
      WalRecord rec{static_cast<uint64_t>(*lsn), unescape_field(wf[2]),
                    unescape_field(wf[3])};
      replay_lsn_ = rec.lsn;
      Session session(*db_, rec.user);
      session.execute(rec.sql);
      lsn_ = rec.lsn;
      st.wal_records++;
      st.wal_bytes += rec.sql.size();
      counters_.wal_records_replayed++;
      counters_.wal_bytes_replayed += rec.sql.size();
      wal_records_since_ckpt_++;
      wal_.append(std::move(rec));
    }
    replaying_ = false;
    statement_mutated_ = false;
    pending_io_ = 0;
    if (lsn_ != static_cast<uint64_t>(*to))
      return set_error(error, "delta: wal tail incomplete");
    wal_.flush();
    counters_.wal_flushes++;
    maybe_start_checkpoint(/*force=*/false);
  } else if (mode == "pages") {
    st.mode = "pages";
    // Parse the shipped catalog, table sizes and dirty pages.
    struct DeltaPage {
      uint64_t lsn = 0;
      std::vector<std::string> rows;  // encoded
    };
    std::vector<std::string> cat;
    std::vector<std::pair<std::string, uint64_t>> sizes;  // table -> nrows
    std::map<std::pair<std::string, uint64_t>, DeltaPage> pages;
    auto lines = split_lines(body);
    while (!lines.empty() && lines.back().empty()) lines.pop_back();
    size_t i = 0;
    if (lines.empty() || !starts_with(lines[0], "CAT\t"))
      return set_error(error, "delta: missing catalog");
    auto ncat = parse_i64(std::string_view(lines[0]).substr(4));
    if (!ncat || *ncat < 0 ||
        lines.size() < 1 + static_cast<size_t>(*ncat))
      return set_error(error, "delta: bad catalog count");
    for (i = 1; i <= static_cast<size_t>(*ncat); ++i) cat.push_back(lines[i]);
    DeltaPage* cur_page = nullptr;
    size_t cur_expect = 0;
    for (; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      auto lf = split(line, '\t');
      if (lf[0] == "S") {
        if (lf.size() != 3) return set_error(error, "delta: bad size line");
        auto nrows = parse_i64(lf[2]);
        if (!nrows || *nrows < 0)
          return set_error(error, "delta: bad size line");
        sizes.emplace_back(unescape_field(lf[1]),
                           static_cast<uint64_t>(*nrows));
      } else if (lf[0] == "P") {
        if (cur_page && cur_page->rows.size() != cur_expect)
          return set_error(error, "delta: short page");
        if (lf.size() != 5) return set_error(error, "delta: bad page line");
        auto pno = parse_i64(lf[2]);
        auto plsn = parse_i64(lf[3]);
        auto n = parse_i64(lf[4]);
        if (!pno || !plsn || !n || *pno < 0 || *plsn < 0 || *n < 0)
          return set_error(error, "delta: bad page line");
        DeltaPage& dp = pages[{unescape_field(lf[1]),
                               static_cast<uint64_t>(*pno)}];
        dp.lsn = static_cast<uint64_t>(*plsn);
        cur_page = &dp;
        cur_expect = static_cast<size_t>(*n);
      } else if (lf[0] == "R") {
        if (!cur_page) return set_error(error, "delta: row before page");
        // The row payload is everything after the "R\t" prefix (it
        // contains tabs between datums).
        cur_page->rows.push_back(line.substr(2));
      } else {
        return set_error(error, "delta: unknown line");
      }
    }
    if (cur_page && cur_page->rows.size() != cur_expect)
      return set_error(error, "delta: short page");

    // Merge into a synthetic full snapshot: shipped catalog, rows from
    // shipped pages where dirty and from our own (identical-by-LSN)
    // pages where clean — then reuse the hardened restore path.
    std::map<std::string, uint64_t> size_of;
    for (const auto& [name, nrows] : sizes) size_of[name] = nrows;
    auto emit_rows = [&](const std::string& table,
                         std::string* out) -> bool {
      auto sz = size_of.find(table);
      if (sz == size_of.end()) return false;
      uint64_t nrows = sz->second;
      const TableData* existing = db_->find_table(table);
      uint64_t np = npages(nrows);
      for (uint64_t p = 0; p < np; ++p) {
        size_t first = static_cast<size_t>(p * opts_.rows_per_page);
        size_t n =
            std::min<size_t>(opts_.rows_per_page, nrows - first);
        auto it = pages.find({table, p});
        if (it != pages.end()) {
          if (it->second.rows.size() != n) return false;
          for (const auto& r : it->second.rows) *out += "R " + r + "\n";
        } else {
          if (!existing || existing->rows.size() < first + n) return false;
          for (size_t k = 0; k < n; ++k)
            *out += "R " + encode_row(existing->rows[first + k]) + "\n";
        }
      }
      return true;
    };
    std::string synthetic = "RDDRSNAP 1\n";
    std::string cur_table;
    bool rows_done = false;
    auto flush_table = [&]() -> bool {
      if (cur_table.empty() || rows_done) return true;
      rows_done = true;
      return emit_rows(cur_table, &synthetic);
    };
    for (const auto& line : cat) {
      if (starts_with(line, "T ")) {
        if (!flush_table())
          return set_error(error, "delta: missing page for " + cur_table);
        auto tf = split(std::string_view(line).substr(2), '\t');
        if (tf.empty()) return set_error(error, "delta: bad catalog");
        cur_table = unescape_field(tf[0]);
        rows_done = false;
      } else if (starts_with(line, "F ") || starts_with(line, "O ")) {
        if (!flush_table())
          return set_error(error, "delta: missing page for " + cur_table);
      }
      synthetic += line + "\n";
    }
    if (!flush_table())
      return set_error(error, "delta: missing page for " + cur_table);

    // Preserve the old page bookkeeping for clean-page carry-over.
    std::map<std::string, TableState> old_tables = std::move(tables_);
    tables_.clear();
    std::string err;
    if (!restore_database(*db_, synthetic, &err)) {
      // The database is cleared (restore's contract); storage state is
      // reset to "empty, no lineage" so callers fall back to a full
      // snapshot.
      pool_.clear();
      lsn_ = 0;
      lineage_id_ = 0;
      wal_.reset(0);
      return set_error(error, "delta: restore: " + err);
    }
    pool_.clear();
    for (const auto& [name, nrows] : sizes) {
      TableState ts;
      uint64_t np = npages(nrows);
      ts.page_lsns.assign(np, 0);
      ts.blocks.assign(np, 0);
      auto old = old_tables.find(name);
      if (old != old_tables.end())
        ts.avg_page_bytes = old->second.avg_page_bytes;
      for (uint64_t p = 0; p < np; ++p) {
        auto it = pages.find({name, p});
        if (it != pages.end()) {
          ts.page_lsns[p] = it->second.lsn;
          pool_.mark_dirty({name, p}, ts.avg_page_bytes);
          st.pages_shipped++;
        } else if (old != old_tables.end() &&
                   p < old->second.page_lsns.size()) {
          ts.page_lsns[p] = old->second.page_lsns[p];
          ts.blocks[p] = old->second.blocks[p];
          old->second.blocks[p] = 0;  // carried over, don't reclaim
        }
      }
      tables_[name] = std::move(ts);
    }
    // Everything not carried over is superseded.
    for (auto& [name, ts] : old_tables)
      for (uint64_t b : ts.blocks)
        if (b) stale_blocks_.push_back(b);
    lsn_ = static_cast<uint64_t>(*to);
    catalog_lsn_ = lsn_;
    wal_.reset(lsn_);
    maybe_start_checkpoint(/*force=*/true);
  } else {
    return set_error(error, "delta: unknown mode " + mode);
  }
  counters_.deltas_applied++;
  if (stats) *stats = st;
  return true;
}

// ---- Modeled resources -------------------------------------------------

int64_t StorageEngine::resident_bytes() const {
  return static_cast<int64_t>(pool_.resident_bytes() + wal_.staged_bytes());
}

// ---- MutationListener --------------------------------------------------

void StorageEngine::on_rows_appended(const TableData& table,
                                     size_t first_new_row) {
  uint64_t first_page = first_new_row / opts_.rows_per_page;
  uint64_t last_page = table.rows.empty()
                           ? first_page
                           : (table.rows.size() - 1) / opts_.rows_per_page;
  for (uint64_t p = first_page; p <= last_page; ++p) mark_page(table, p);
}

void StorageEngine::on_row_updated(const TableData& table, size_t ordinal) {
  mark_page(table, ordinal / opts_.rows_per_page);
}

void StorageEngine::on_rows_compacted(const TableData& table,
                                      size_t first_changed,
                                      size_t old_row_count) {
  (void)old_row_count;
  TableState& ts = ensure_table(table);
  uint64_t new_np = npages(table.rows.size());
  // Pages past the new end are gone: reclaim their blocks, drop frames.
  for (uint64_t p = new_np; p < ts.blocks.size(); ++p) {
    if (ts.blocks[p]) stale_blocks_.push_back(ts.blocks[p]);
    pool_.drop({table.name, p});
  }
  if (ts.blocks.size() > new_np) {
    ts.blocks.resize(new_np);
    ts.page_lsns.resize(new_np);
  }
  statement_mutated_ = true;
  for (uint64_t p = first_changed / opts_.rows_per_page; p < new_np; ++p)
    mark_page(table, p);
  if (new_np == 0) statement_mutated_ = true;  // empty table still mutated
}

void StorageEngine::on_table_created(const TableData& table) {
  ensure_table(table);
  catalog_lsn_ = effective_lsn();
  statement_mutated_ = true;
}

void StorageEngine::on_table_dropped(const std::string& name) {
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    for (uint64_t b : it->second.blocks)
      if (b) stale_blocks_.push_back(b);
    tables_.erase(it);
  }
  pool_.drop_table(name);
  catalog_lsn_ = effective_lsn();
  statement_mutated_ = true;
}

void StorageEngine::on_catalog_changed(const TableData& table) {
  (void)table;
  catalog_lsn_ = effective_lsn();
  statement_mutated_ = true;
}

void StorageEngine::on_schema_changed() {
  catalog_lsn_ = effective_lsn();
  statement_mutated_ = true;
}

void StorageEngine::on_scan(const TableData& table,
                            const std::vector<size_t>* candidates) {
  TableState& ts = ensure_table(table);
  sim::Time miss_cost = data_->options().read_latency;
  if (candidates) {
    uint64_t last = UINT64_MAX;
    for (size_t ord : *candidates) {
      uint64_t p = ord / opts_.rows_per_page;
      if (p == last) continue;  // candidate lists cluster by page
      last = p;
      if (!pool_.touch({table.name, p}, ts.avg_page_bytes))
        pending_io_ += miss_cost;
    }
    return;
  }
  uint64_t np = npages(table.rows.size());
  for (uint64_t p = 0; p < np; ++p)
    if (!pool_.touch({table.name, p}, ts.avg_page_bytes))
      pending_io_ += miss_cost;
}

}  // namespace rddr::sqldb::storage
