// Write-ahead log for the sqldb storage engine.
//
// Statement-level redo log (the MySQL-binlog point in the design space:
// the engine is deterministic, so re-executing the committed statement
// stream reproduces the exact state). One record per mutating statement
// script, one device block per record, framed and checksummed:
//
//   block 0:    RDDRWALH 1\t<start_block>\t<start_lsn>\t<checksum>
//   block k>=1: RDDRWALR 1\t<lsn>\t<user>\t<sql>\t<checksum>
//
// Appends are *staged* on the BlockDevice; `flush` is the group-commit
// durability barrier. After a crash, `recover` scans forward from the
// header's start block and stops at the first missing or corrupt record —
// exactly the partial-WAL-flush semantics torn/lost staged writes
// produce. Records are also mirrored in memory so the retained tail can
// feed WAL-mode incremental resync without device reads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/block_device.h"

namespace rddr::sqldb::storage {

struct WalRecord {
  uint64_t lsn = 0;
  std::string user;
  std::string sql;
};

class LogManager {
 public:
  explicit LogManager(std::shared_ptr<sim::BlockDevice> dev);

  /// Appends a record (staged; durable after the next flush). Returns the
  /// modeled device write latency.
  sim::Time append(WalRecord rec);

  /// Group-commit barrier: stages become durable. Returns sync latency.
  sim::Time flush();
  bool has_staged() const { return staged_records_ > 0; }

  struct RecoverResult {
    std::vector<WalRecord> records;  ///< valid durable tail, LSN order
    uint64_t bytes = 0;              ///< payload bytes scanned (replayed)
    bool torn = false;               ///< scan stopped at a corrupt record
    sim::Time io = 0;
    std::string error;  ///< non-empty when the header itself is unreadable
    bool ok = true;
  };
  /// Rebuilds in-memory state from the device (crash recovery). The next
  /// append continues after the last valid record.
  RecoverResult recover();

  /// Initializes an empty log starting at `start_lsn` (bootstrap/rebase).
  /// Returns the modeled IO (header write + sync).
  sim::Time reset(uint64_t start_lsn);

  /// Drops retained records with lsn <= `through_lsn`, except that the
  /// newest `keep_records` stay retained (the incremental-resync window).
  /// Returns the modeled IO (header rewrite; trims are free).
  sim::Time truncate_through(uint64_t through_lsn, uint64_t keep_records);

  /// Retained records with lsn > `after_lsn`, oldest first. nullopt when
  /// the tail does not reach back to `after_lsn` (a full/page resync is
  /// needed instead).
  std::optional<std::vector<WalRecord>> records_after(uint64_t after_lsn) const;

  uint64_t retained_records() const { return records_.size(); }
  uint64_t last_lsn() const {
    return records_.empty() ? start_lsn_ : records_.back().lsn;
  }
  /// Payload bytes currently staged (not yet flushed) — part of the
  /// container's modeled resident memory.
  uint64_t staged_bytes() const { return staged_bytes_; }

 private:
  static std::string encode_record(const WalRecord& rec);
  static std::optional<WalRecord> decode_record(std::string_view bytes);
  std::string encode_header() const;
  sim::Time write_header();

  std::shared_ptr<sim::BlockDevice> dev_;
  std::deque<WalRecord> records_;  // retained tail mirror (durable+staged)
  uint64_t start_block_ = 1;       // device block of records_.front()
  uint64_t next_block_ = 1;
  uint64_t start_lsn_ = 0;  // lsn before records_.front()
  uint64_t staged_records_ = 0;
  uint64_t staged_bytes_ = 0;
};

}  // namespace rddr::sqldb::storage
