#include "sqldb/storage/wal.h"

#include "common/strutil.h"
#include "sqldb/codec.h"
#include "sqldb/storage/page.h"

namespace rddr::sqldb::storage {

namespace {
constexpr int kReadRetries = 3;  // transient device read errors
}

LogManager::LogManager(std::shared_ptr<sim::BlockDevice> dev)
    : dev_(std::move(dev)) {}

std::string LogManager::encode_record(const WalRecord& rec) {
  std::string body =
      strformat("RDDRWALR 1\t%llu\t%s\t%s",
                static_cast<unsigned long long>(rec.lsn),
                escape_field(rec.user).c_str(), escape_field(rec.sql).c_str());
  return body + "\t" + hex64(fnv1a64(body));
}

std::optional<WalRecord> LogManager::decode_record(std::string_view bytes) {
  auto fields = split(bytes, '\t');
  if (fields.size() != 5 || fields[0] != "RDDRWALR 1") return std::nullopt;
  size_t last_tab = bytes.rfind('\t');
  auto sum = parse_hex64(fields[4]);
  if (!sum || fnv1a64(bytes.substr(0, last_tab)) != *sum) return std::nullopt;
  auto lsn = parse_i64(fields[1]);
  if (!lsn || *lsn < 0) return std::nullopt;
  WalRecord rec;
  rec.lsn = static_cast<uint64_t>(*lsn);
  rec.user = unescape_field(fields[2]);
  rec.sql = unescape_field(fields[3]);
  return rec;
}

std::string LogManager::encode_header() const {
  std::string body = strformat("RDDRWALH 1\t%llu\t%llu",
                               static_cast<unsigned long long>(start_block_),
                               static_cast<unsigned long long>(start_lsn_));
  return body + "\t" + hex64(fnv1a64(body));
}

sim::Time LogManager::write_header() { return dev_->write(0, encode_header()); }

sim::Time LogManager::append(WalRecord rec) {
  std::string encoded = encode_record(rec);
  staged_records_++;
  staged_bytes_ += encoded.size();
  sim::Time io = dev_->write(next_block_++, std::move(encoded));
  records_.push_back(std::move(rec));
  return io;
}

sim::Time LogManager::flush() {
  staged_records_ = 0;
  staged_bytes_ = 0;
  return dev_->sync();
}

LogManager::RecoverResult LogManager::recover() {
  RecoverResult out;
  records_.clear();
  staged_records_ = 0;
  staged_bytes_ = 0;

  // Header first (block 0). Transient read errors get bounded retries;
  // a missing or corrupt header means no usable log at all.
  sim::BlockDevice::ReadResult head;
  for (int i = 0; i < kReadRetries; ++i) {
    head = dev_->read(0);
    out.io += head.latency;
    if (head.ok || !head.exists) break;
  }
  if (!head.exists) {
    out.ok = false;
    out.error = "wal: no header";
    return out;
  }
  if (!head.ok) {
    out.ok = false;
    out.error = "wal: header unreadable";
    return out;
  }
  auto fields = split(head.data, '\t');
  auto sum = fields.size() == 4 ? parse_hex64(fields[3]) : std::nullopt;
  size_t last_tab = head.data.rfind('\t');
  if (fields.size() != 4 || fields[0] != "RDDRWALH 1" || !sum ||
      fnv1a64(std::string_view(head.data).substr(0, last_tab)) != *sum) {
    out.ok = false;
    out.error = "wal: corrupt header";
    return out;
  }
  auto start_block = parse_i64(fields[1]);
  auto start_lsn = parse_i64(fields[2]);
  if (!start_block || *start_block < 1 || !start_lsn || *start_lsn < 0) {
    out.ok = false;
    out.error = "wal: corrupt header";
    return out;
  }
  start_block_ = static_cast<uint64_t>(*start_block);
  start_lsn_ = static_cast<uint64_t>(*start_lsn);

  // Forward scan: stop at the first gap (flush never reached it) or
  // corrupt record (torn write) — the valid durable prefix is the log.
  uint64_t expect_lsn = start_lsn_ + 1;
  uint64_t block = start_block_;
  for (;;) {
    sim::BlockDevice::ReadResult r;
    for (int i = 0; i < kReadRetries; ++i) {
      r = dev_->read(block);
      out.io += r.latency;
      if (r.ok || !r.exists) break;
    }
    if (!r.exists) break;  // end of log
    auto rec = r.ok ? decode_record(r.data) : std::nullopt;
    if (!rec || rec->lsn != expect_lsn) {
      out.torn = true;
      break;
    }
    out.bytes += r.data.size();
    records_.push_back(*rec);
    out.records.push_back(std::move(*rec));
    expect_lsn++;
    block++;
  }
  next_block_ = block;
  return out;
}

sim::Time LogManager::reset(uint64_t start_lsn) {
  // Drop every existing record block, then write a fresh durable header.
  for (uint64_t b = start_block_; b < next_block_; ++b) dev_->trim(b);
  records_.clear();
  staged_records_ = 0;
  staged_bytes_ = 0;
  start_block_ = 1;
  next_block_ = 1;
  start_lsn_ = start_lsn;
  sim::Time io = write_header();
  return io + dev_->sync();
}

sim::Time LogManager::truncate_through(uint64_t through_lsn,
                                       uint64_t keep_records) {
  std::vector<uint64_t> trim_blocks;
  while (!records_.empty() && records_.front().lsn <= through_lsn &&
         records_.size() > keep_records) {
    trim_blocks.push_back(start_block_);
    start_lsn_ = records_.front().lsn;
    start_block_++;
    records_.pop_front();
  }
  if (trim_blocks.empty()) return 0;
  // Durable header first, then trim: a crash between the two leaves
  // unreferenced blocks behind (harmless), never a header pointing at
  // trimmed ones (which would read as an empty log).
  sim::Time io = write_header();
  io += dev_->sync();
  staged_records_ = 0;
  staged_bytes_ = 0;
  for (uint64_t b : trim_blocks) dev_->trim(b);
  return io;
}

std::optional<std::vector<WalRecord>> LogManager::records_after(
    uint64_t after_lsn) const {
  if (after_lsn < start_lsn_) return std::nullopt;  // tail does not reach
  std::vector<WalRecord> out;
  for (const auto& rec : records_)
    if (rec.lsn > after_lsn) out.push_back(rec);
  return out;
}

}  // namespace rddr::sqldb::storage
