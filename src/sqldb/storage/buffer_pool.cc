#include "sqldb/storage/buffer_pool.h"

namespace rddr::sqldb::storage {

bool BufferPool::touch(const Key& key, uint64_t bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    stats_.hits++;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return true;
  }
  stats_.misses++;
  install(key, bytes, /*dirty=*/false);
  return false;
}

void BufferPool::mark_dirty(const Key& key, uint64_t bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    resident_bytes_ += bytes - it->second.bytes;
    it->second.bytes = bytes;
    if (!it->second.dirty) {
      it->second.dirty = true;
      dirty_++;
    }
    return;
  }
  stats_.misses++;
  install(key, bytes, /*dirty=*/true);
}

void BufferPool::mark_clean(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.dirty) return;
  it->second.dirty = false;
  dirty_--;
  evict_for_budget();
}

void BufferPool::drop(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.dirty) dirty_--;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void BufferPool::drop_table(const std::string& table) {
  auto it = entries_.lower_bound(Key{table, 0});
  while (it != entries_.end() && it->first.first == table) {
    if (it->second.dirty) dirty_--;
    resident_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    it = entries_.erase(it);
  }
}

void BufferPool::clear() {
  lru_.clear();
  entries_.clear();
  resident_bytes_ = 0;
  dirty_ = 0;
}

void BufferPool::install(const Key& key, uint64_t bytes, bool dirty) {
  lru_.push_front(key);
  Entry e;
  e.lru_it = lru_.begin();
  e.bytes = bytes;
  e.dirty = dirty;
  entries_[key] = e;
  resident_bytes_ += bytes;
  if (dirty) dirty_++;
  evict_for_budget();
}

void BufferPool::evict_for_budget() {
  while (entries_.size() > budget_) {
    // Coldest-first, skipping pinned (dirty) frames.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (!entries_[*it].dirty) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) {
      stats_.dirty_overflows++;
      return;  // everything dirty: overflow until the next checkpoint
    }
    auto it = entries_.find(*victim);
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.erase(victim);
    stats_.evictions++;
  }
}

}  // namespace rddr::sqldb::storage
