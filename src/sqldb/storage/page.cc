#include "sqldb/storage/page.h"

#include "common/strutil.h"
#include "sqldb/codec.h"

namespace rddr::sqldb::storage {

uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(uint64_t v) {
  return strformat("%016llx", static_cast<unsigned long long>(v));
}

std::optional<uint64_t> parse_hex64(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  uint64_t out = 0;
  for (char c : s) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = 10 + (c - 'a');
    else return std::nullopt;
    out = (out << 4) | static_cast<uint64_t>(v);
  }
  return out;
}

namespace {

// The checksum covers a canonical rendering of the header fields plus
// the row body, so neither half can be torn without detection.
uint64_t page_checksum(std::string_view table, uint64_t page_no, uint64_t lsn,
                       size_t nrows, std::string_view body) {
  std::string head = strformat("%.*s\t%llu\t%llu\t%zu\n",
                               static_cast<int>(table.size()), table.data(),
                               static_cast<unsigned long long>(page_no),
                               static_cast<unsigned long long>(lsn), nrows);
  return fnv1a64(head) ^ fnv1a64(body);
}

}  // namespace

Bytes encode_page(const TableData& table, uint64_t page_no, uint64_t page_lsn,
                  size_t first, size_t n) {
  std::string body;
  size_t end = first + n;
  if (end > table.rows.size()) end = table.rows.size();
  size_t nrows = end > first ? end - first : 0;
  for (size_t i = first; i < end; ++i) {
    body += encode_row(table.rows[i]);
    body += '\n';
  }
  std::string esc = escape_field(table.name);
  uint64_t sum = page_checksum(esc, page_no, page_lsn, nrows, body);
  Bytes out = strformat("RDDRPAGE 1\t%s\t%llu\t%llu\t%zu\t%016llx\n",
                        esc.c_str(),
                        static_cast<unsigned long long>(page_no),
                        static_cast<unsigned long long>(page_lsn), nrows,
                        static_cast<unsigned long long>(sum));
  out += body;
  return out;
}

std::optional<PageImage> decode_page(ByteView bytes) {
  size_t nl = bytes.find('\n');
  if (nl == ByteView::npos) return std::nullopt;
  std::string_view head = bytes.substr(0, nl);
  std::string_view body = bytes.substr(nl + 1);
  auto fields = split(head, '\t');
  if (fields.size() != 6 || fields[0] != "RDDRPAGE 1") return std::nullopt;
  auto page_no = parse_i64(fields[2]);
  auto lsn = parse_i64(fields[3]);
  auto nrows = parse_i64(fields[4]);
  if (!page_no || !lsn || !nrows || *page_no < 0 || *lsn < 0 || *nrows < 0)
    return std::nullopt;
  auto want = parse_hex64(fields[5]);
  if (!want ||
      page_checksum(fields[1], static_cast<uint64_t>(*page_no),
                    static_cast<uint64_t>(*lsn),
                    static_cast<size_t>(*nrows), body) != *want)
    return std::nullopt;

  PageImage img;
  img.table = unescape_field(fields[1]);
  img.page_no = static_cast<uint64_t>(*page_no);
  img.page_lsn = static_cast<uint64_t>(*lsn);
  img.rows.reserve(static_cast<size_t>(*nrows));
  size_t pos = 0;
  for (int64_t i = 0; i < *nrows; ++i) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    Row row;
    if (!line.empty()) {
      auto cells = split(line, '\t');
      row.reserve(cells.size());
      for (const auto& cell : cells) {
        Datum d;
        if (!decode_datum(cell, &d)) return std::nullopt;
        row.push_back(std::move(d));
      }
    }
    img.rows.push_back(std::move(row));
  }
  if (pos != body.size()) return std::nullopt;  // trailing garbage
  return img;
}

}  // namespace rddr::sqldb::storage
