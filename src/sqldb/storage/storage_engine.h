// Durable storage engine for sqldb (the tentpole of DESIGN.md "Durable
// storage & recovery").
//
// Ties the pieces together: slotted pages (page.h) over a data
// BlockDevice, a statement-level WAL (wal.h) on its own device, an LRU
// buffer pool (buffer_pool.h), copy-on-write checkpoints with dual root
// slots, redo recovery, and page/WAL-tail incremental resync deltas.
//
// Model. The in-memory Database stays the authoritative executor state
// (the engine substitutes for a DBMS process; see engine.h) — the
// storage engine listens to its mutations (MutationListener) to maintain
// page-level dirty tracking, charges modeled IO latency for buffer-pool
// misses and WAL commits, and keeps a durable image from which the full
// state can be rebuilt after `Host` crash/restart:
//
//   durable state = root manifest (catalog + page map, dual slots with
//                   checksums, alternating blocks 0/1)
//                 + page images (CoW: checkpoints write dirty pages to
//                   fresh blocks; the old root stays valid until the new
//                   root is synced)
//                 + WAL tail (statements after the root's LSN)
//
// LSN discipline: the LSN counts mutating statement scripts since
// bootstrap. Replicas of one lineage fed the same replicated statement
// stream assign identical LSNs, which is what makes `page_lsn <= L ⇒
// byte-identical page` hold across replicas and page-level resync sound.
//
// Checkpoints are spread over virtual time (a state machine stepping a
// few page writes per tick) so crash-during-checkpoint windows exist;
// page images are captured synchronously at checkpoint start, so the
// written set is consistent at the checkpoint LSN no matter how many
// statements land during the window.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/block_device.h"
#include "netsim/simulator.h"
#include "sqldb/engine.h"
#include "sqldb/storage/buffer_pool.h"
#include "sqldb/storage/wal.h"

namespace rddr::sqldb::storage {

struct StorageOptions {
  /// Rows per logical page (fixed per deployment: page-level resync needs
  /// identical row→page mapping on every replica of a lineage).
  uint64_t rows_per_page = 64;
  /// Buffer pool frame budget (pages resident at once) — the fig6
  /// cache-pressure knob.
  uint64_t frame_budget = 256;
  /// 0 = the WAL is synced inside every commit (no torn tail possible,
  /// higher per-query IO). >0 = group commit: appends stage and a
  /// background flush runs this often — the window partial-WAL-flush
  /// faults live in.
  sim::Time wal_flush_interval = 0;
  /// WAL records between automatic checkpoints.
  uint64_t checkpoint_every_records = 256;
  /// Page writes staged per checkpoint step, and the virtual-time gap
  /// between steps (together: how long the crash-during-checkpoint
  /// window is).
  uint64_t checkpoint_pages_per_step = 16;
  sim::Time checkpoint_step_interval = 2 * sim::kMillisecond;
  /// Records kept in the WAL past a checkpoint — the reach-back window
  /// for WAL-mode incremental resync.
  uint64_t wal_keep_records = 4096;
};

struct StorageCounters {
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_flushes = 0;
  uint64_t checkpoints_started = 0;
  uint64_t checkpoints_completed = 0;
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t recoveries = 0;
  uint64_t recovery_failures = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_bytes_replayed = 0;
  uint64_t deltas_built = 0;
  uint64_t deltas_applied = 0;
};

class StorageEngine : public MutationListener {
 public:
  StorageEngine(sim::Simulator& sim, std::shared_ptr<sim::BlockDevice> data,
                std::shared_ptr<sim::BlockDevice> wal, StorageOptions opts);
  ~StorageEngine() override;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // ---- Lifecycle -------------------------------------------------------

  /// True when the data device holds a valid root manifest (at least one
  /// checkpoint completed in a previous life).
  bool has_durable_state() const;

  struct RecoveryResult {
    bool ok = false;
    std::string error;
    /// Modeled IO + replay latency; the server defers its listen() by
    /// this (a recovering container is not instantly serving).
    sim::Time io_time = 0;
    uint64_t pages_read = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_bytes_replayed = 0;
    bool wal_torn = false;  ///< replay stopped at a torn record
    /// Deterministic recovery trace: same seed ⇒ byte-identical.
    std::string trace;
  };

  /// Crash recovery: replaces `db`'s contents from the durable image
  /// (root + pages + WAL redo) and attaches to it. On failure the
  /// database is left cleared — the caller treats the instance as empty
  /// (peer resync territory), never half-recovered.
  RecoveryResult recover(Database& db);

  /// First boot: adopts `db`'s current contents (bulk-loaded by the
  /// image factory) as the storage state at LSN 0, attaches, and starts
  /// the initial checkpoint. `lineage_seed` salts the lineage id —
  /// replicas bootstrapped from identical content share it, which gates
  /// incremental resync. Returns the modeled IO of the WAL reset.
  sim::Time bootstrap(Database& db, uint64_t lineage_seed = 0);

  void detach();
  bool attached() const { return db_ != nullptr; }

  // ---- Commit path (pgwire server) ------------------------------------

  void begin_statement();
  /// After Session::execute: logs the script to the WAL if it mutated
  /// state, schedules group-commit flush / checkpoint as configured, and
  /// returns the modeled IO latency (buffer misses + WAL cost) the
  /// server adds to the response time.
  sim::Time end_statement(const std::string& user, std::string_view sql);

  // ---- Incremental resync ---------------------------------------------

  uint64_t committed_lsn() const { return lsn_; }
  uint64_t lineage_id() const { return lineage_id_; }

  struct DeltaStats {
    uint64_t pages_shipped = 0;
    uint64_t wal_records = 0;
    uint64_t wal_bytes = 0;
    uint64_t bytes = 0;
    const char* mode = "none";  // "wal" | "pages"
  };

  /// Source side: a delta bringing a same-lineage peer at `target_lsn`
  /// up to this replica's LSN — the WAL tail when it reaches back far
  /// enough, dirty pages (page_lsn > target_lsn) + catalog otherwise.
  /// nullopt: lineages differ / target is ahead — full snapshot needed.
  std::optional<std::string> build_delta(uint64_t target_lsn,
                                         uint64_t target_lineage,
                                         DeltaStats* stats) const;

  /// Target side: applies a delta built against exactly this LSN and
  /// lineage. False on any mismatch or corruption — the database is left
  /// unchanged (wal mode may have partially replayed; callers fall back
  /// to a full snapshot either way).
  bool apply_delta(std::string_view delta, DeltaStats* stats,
                   std::string* error = nullptr);

  /// After a full-snapshot load: re-adopts the database contents, aligns
  /// LSN/lineage with the snapshot's source, resets the WAL and starts a
  /// checkpoint so the durable image catches up.
  sim::Time rebase(uint64_t source_lsn, uint64_t source_lineage);

  // ---- Modeled resources ----------------------------------------------

  /// Simulated resident bytes: buffer-pool frames + staged WAL. Bounded
  /// by the frame budget — the bigger-than-memory story for fig6.
  int64_t resident_bytes() const;

  // ---- Introspection / chaos hooks ------------------------------------

  const StorageCounters& counters() const { return counters_; }
  const BufferPool& pool() const { return pool_; }
  const StorageOptions& options() const { return opts_; }
  bool checkpoint_in_progress() const { return ckpt_.active; }
  uint64_t checkpointed_lsn() const { return checkpointed_lsn_; }
  /// Kicks a checkpoint now (no-op if one is running) — lets the chaos
  /// harness open a crash-during-checkpoint window on demand.
  void force_checkpoint() { maybe_start_checkpoint(/*force=*/true); }
  sim::BlockDevice& data_device() { return *data_; }
  sim::BlockDevice& wal_device() { return *wal_dev_; }

  // ---- MutationListener -----------------------------------------------

  void on_rows_appended(const TableData& table, size_t first_new_row) override;
  void on_row_updated(const TableData& table, size_t ordinal) override;
  void on_rows_compacted(const TableData& table, size_t first_changed,
                         size_t old_row_count) override;
  void on_table_created(const TableData& table) override;
  void on_table_dropped(const std::string& name) override;
  void on_catalog_changed(const TableData& table) override;
  void on_schema_changed() override;
  void on_scan(const TableData& table,
               const std::vector<size_t>* candidates) override;

 private:
  struct TableState {
    std::vector<uint64_t> page_lsns;  // logical page -> last-touch LSN
    std::vector<uint64_t> blocks;     // logical page -> device block (0=none)
    uint64_t avg_page_bytes = 3072;   // frame-size estimate for the pool
  };

  struct RootImage {
    uint64_t seq = 0;
    uint64_t lsn = 0;
    uint64_t lineage = 0;
    uint64_t next_free_block = 2;
    uint64_t rows_per_page = 64;
    std::vector<std::string> catalog_lines;
    struct TableMap {
      std::string name;
      uint64_t nrows = 0;
      std::vector<uint64_t> blocks;
    };
    std::vector<TableMap> tables;
  };

  struct Checkpoint {
    bool active = false;
    uint64_t seq = 0;
    uint64_t target_lsn = 0;
    std::vector<std::pair<BufferPool::Key, Bytes>> writes;  // captured images
    std::vector<std::pair<BufferPool::Key, uint64_t>> new_blocks;
    std::vector<uint64_t> free_after;  // superseded blocks
    Bytes root_image;
    size_t next_write = 0;
    uint64_t step_event = 0;
  };

  uint64_t effective_lsn() const { return replaying_ ? replay_lsn_ : lsn_ + 1; }
  uint64_t npages(size_t rows) const {
    return rows ? (rows + opts_.rows_per_page - 1) / opts_.rows_per_page : 0;
  }
  TableState& ensure_table(const TableData& t);
  void mark_page(const TableData& t, uint64_t page);
  void adopt_tables(uint64_t page_lsn);
  void reclaim_all_blocks();

  std::string catalog_lines(const Database& db) const;
  Bytes encode_root(const RootImage& root) const;
  std::optional<RootImage> decode_root(ByteView bytes) const;
  std::optional<RootImage> read_root(sim::Time* io) const;

  void maybe_start_checkpoint(bool force);
  void checkpoint_step();
  void finish_checkpoint();
  void schedule_flush();

  sim::Simulator& sim_;
  std::shared_ptr<sim::BlockDevice> data_;
  std::shared_ptr<sim::BlockDevice> wal_dev_;
  StorageOptions opts_;
  LogManager wal_;
  BufferPool pool_;
  Database* db_ = nullptr;

  uint64_t lsn_ = 0;
  uint64_t checkpointed_lsn_ = 0;
  uint64_t lineage_id_ = 0;
  uint64_t root_seq_ = 0;
  uint64_t next_free_block_ = 2;  // 0/1 are the root slots
  uint64_t catalog_lsn_ = 0;
  uint64_t wal_records_since_ckpt_ = 0;
  std::map<std::string, TableState> tables_;
  std::vector<uint64_t> stale_blocks_;  // freed at next checkpoint

  bool statement_mutated_ = false;
  sim::Time pending_io_ = 0;
  bool replaying_ = false;
  uint64_t replay_lsn_ = 0;

  Checkpoint ckpt_;
  uint64_t flush_event_ = 0;

  mutable StorageCounters counters_;  // build_delta (const) counts builds
};

}  // namespace rddr::sqldb::storage
