// Slotted heap page codec for the sqldb storage engine.
//
// A page holds a fixed-capacity run of a table's rows (`rows_per_page`
// from StorageOptions): logical page k covers row ordinals
// [k*rpp, (k+1)*rpp). Pages are text (the repo's durable forms are all
// line-oriented — see sqldb/codec.h) with a checksummed header:
//
//   RDDRPAGE 1\t<table>\t<page_no>\t<page_lsn>\t<nrows>\t<checksum>\n
//   <encoded row>\n           (nrows lines, sqldb::encode_row)
//
// The checksum (FNV-1a 64) covers the header fields and the row body, so
// a torn device write — a prefix of the new image spliced over the old —
// is detected no matter where the tear lands. `page_lsn` is the LSN of
// the last statement that touched any row in the page; it is what makes
// page-level incremental resync sound: replicas fed the same statement
// prefix have byte-identical pages at equal page_lsn.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "sqldb/engine.h"

namespace rddr::sqldb::storage {

/// FNV-1a 64-bit over a byte string (shared by page, WAL and root
/// checksums — one hash, one framing discipline).
uint64_t fnv1a64(std::string_view s);

/// Fixed-width lowercase hex rendering of a checksum, and its inverse.
std::string hex64(uint64_t v);
std::optional<uint64_t> parse_hex64(std::string_view s);

struct PageImage {
  std::string table;
  uint64_t page_no = 0;
  uint64_t page_lsn = 0;
  std::vector<Row> rows;
};

/// Encodes rows [first, first+n) of `table` as a page image.
Bytes encode_page(const TableData& table, uint64_t page_no, uint64_t page_lsn,
                  size_t first, size_t n);

/// Decodes and verifies a page image. nullopt on framing or checksum
/// failure (torn write, bit rot) — callers treat the page as lost.
std::optional<PageImage> decode_page(ByteView bytes);

}  // namespace rddr::sqldb::storage
