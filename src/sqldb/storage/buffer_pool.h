// LRU buffer pool (frame metadata) for the sqldb storage engine.
//
// MiniRDB-style cache layer (SNIPPETS.md), adapted to the simulator's
// modeled-resource discipline: the authoritative row data stays in the
// in-memory Database (the engine substitutes for a real DBMS, not its
// malloc), so frames track *which* pages are resident and how many bytes
// they pin — hits are free, misses charge a device read to the query's IO
// latency, and `resident_bytes` bounds the simulated container footprint
// (the fig6 cache-pressure knob).
//
// Dirty frames are pinned: they cannot be evicted until a checkpoint
// writes them back (checkpoint-on-pressure lives in StorageEngine). Clean
// frames evict strictly coldest-first, so eviction order — and therefore
// every downstream hit/miss trace — is deterministic.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

namespace rddr::sqldb::storage {

class BufferPool {
 public:
  /// (table name, logical page number)
  using Key = std::pair<std::string, uint64_t>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Times the pool exceeded its budget because every frame was dirty
    /// (checkpoint pressure; StorageEngine reacts by checkpointing).
    uint64_t dirty_overflows = 0;
  };

  explicit BufferPool(uint64_t frame_budget) : budget_(frame_budget) {}

  /// Read access to a page. Returns true on a hit; on a miss the page is
  /// faulted in (possibly evicting the coldest clean frame) and false is
  /// returned so the caller can charge a device read.
  bool touch(const Key& key, uint64_t bytes);

  /// Write access: the frame is installed if absent (counted as a miss —
  /// a mutation faults the page in too) and pinned dirty until
  /// `mark_clean`.
  void mark_dirty(const Key& key, uint64_t bytes);
  void mark_clean(const Key& key);

  void drop(const Key& key);
  void drop_table(const std::string& table);
  void clear();

  uint64_t frames() const { return entries_.size(); }
  uint64_t dirty_frames() const { return dirty_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t budget() const { return budget_; }
  const Stats& stats() const { return stats_; }
  double hit_rate() const {
    uint64_t total = stats_.hits + stats_.misses;
    return total ? static_cast<double>(stats_.hits) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Entry {
    std::list<Key>::iterator lru_it;
    uint64_t bytes = 0;
    bool dirty = false;
  };

  void install(const Key& key, uint64_t bytes, bool dirty);
  void evict_for_budget();

  uint64_t budget_;
  std::list<Key> lru_;  // front = most recent
  std::map<Key, Entry> entries_;
  uint64_t resident_bytes_ = 0;
  uint64_t dirty_ = 0;
  Stats stats_;
};

}  // namespace rddr::sqldb::storage
