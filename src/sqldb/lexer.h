// SQL lexer.
//
// Postgres-compatible where it matters to the exploits: single-quoted
// strings with '' escaping (the DVWA injection depends on exact quote
// semantics), $n parameters, dollar-quoted bodies ($$...$$), line comments
// (--), and multi-character operator symbols so user-defined operators like
// `>>>` and `<<<` lex as single tokens.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace rddr::sqldb {

enum class TokKind {
  kEnd,
  kIdent,     // unquoted identifier (lowercased) or "quoted" (verbatim)
  kNumber,    // integer or decimal literal text
  kString,    // string literal (unescaped content)
  kOperator,  // symbol built from +-*/<>=~!@#%^&|?
  kParam,     // $n
  kLParen, kRParen, kComma, kSemicolon, kDot,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // normalized content (see kIdent/kString notes)
  size_t offset = 0;  // byte offset in the input (error messages)
};

/// Tokenizes SQL text. Fails on unterminated strings/comments and stray
/// characters.
Result<std::vector<Token>> lex_sql(std::string_view sql);

}  // namespace rddr::sqldb
