#include "sqldb/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/strutil.h"

namespace rddr::sqldb {

std::string type_name(Type t) {
  switch (t) {
    case Type::kNull: return "unknown";
    case Type::kBool: return "boolean";
    case Type::kInt: return "integer";
    case Type::kFloat: return "double precision";
    case Type::kText: return "text";
  }
  return "?";
}

std::optional<Type> parse_type_name(std::string_view s) {
  std::string l = to_lower(trim(s));
  if (l == "int" || l == "integer" || l == "int4" || l == "int8" ||
      l == "bigint" || l == "smallint" || l == "serial")
    return Type::kInt;
  if (l == "bool" || l == "boolean") return Type::kBool;
  if (l == "float" || l == "double" || l == "double precision" ||
      l == "real" || l == "numeric" || l == "decimal" || l == "float8")
    return Type::kFloat;
  if (l == "text" || l == "varchar" || l == "char" || l == "date" ||
      starts_with(l, "varchar(") || starts_with(l, "char(") ||
      starts_with(l, "numeric("))
    return l.find("numeric") == 0 ? Type::kFloat : Type::kText;
  return std::nullopt;
}

Datum Datum::boolean(bool b) {
  Datum d;
  d.v_ = b;
  return d;
}
Datum Datum::integer(int64_t i) {
  Datum d;
  d.v_ = i;
  return d;
}
Datum Datum::floating(double f) {
  Datum d;
  d.v_ = f;
  return d;
}
Datum Datum::text(std::string s) {
  Datum d;
  d.v_ = std::move(s);
  return d;
}

Type Datum::type() const {
  switch (v_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kFloat;
    default: return Type::kText;
  }
}

double Datum::numeric() const {
  switch (type()) {
    case Type::kBool: return as_bool() ? 1.0 : 0.0;
    case Type::kInt: return static_cast<double>(as_int());
    case Type::kFloat: return as_float();
    default: return 0.0;
  }
}

std::string Datum::to_text() const {
  switch (type()) {
    case Type::kNull: return "";
    case Type::kBool: return as_bool() ? "t" : "f";
    case Type::kInt: return std::to_string(as_int());
    case Type::kFloat: {
      double d = as_float();
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.12g", d);
      return buf;
    }
    case Type::kText: return as_text();
  }
  return "";
}

std::optional<int> Datum::compare(const Datum& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  Type a = type(), b = other.type();
  auto num_cmp = [](double x, double y) { return x < y ? -1 : (x > y ? 1 : 0); };
  if (a == Type::kText && b == Type::kText) {
    int c = as_text().compare(other.as_text());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a == Type::kText || b == Type::kText) {
    // Coerce the text side numerically when possible; else bytewise on the
    // rendered forms.
    const Datum& txt = (a == Type::kText) ? *this : other;
    auto parsed = parse_f64(txt.as_text());
    if (parsed) {
      double x = (a == Type::kText) ? *parsed : numeric();
      double y = (b == Type::kText) ? *parsed : other.numeric();
      return num_cmp(x, y);
    }
    std::string sa = to_text(), sb = other.to_text();
    int c = sa.compare(sb);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return num_cmp(numeric(), other.numeric());
}

bool Datum::group_equal(const Datum& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  auto c = compare(other);
  return c && *c == 0;
}

size_t Datum::hash() const {
  switch (type()) {
    case Type::kNull: return 0x9e3779b9;
    case Type::kBool: return as_bool() ? 1 : 2;
    case Type::kInt: return std::hash<int64_t>()(as_int());
    case Type::kFloat: {
      double d = as_float();
      // Hash integral floats like ints so 1 and 1.0 group together.
      if (d == std::floor(d) && std::fabs(d) < 1e15)
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      return std::hash<double>()(d);
    }
    case Type::kText: return std::hash<std::string>()(as_text());
  }
  return 0;
}

}  // namespace rddr::sqldb
