#include "scenario/corpus.h"

#include <algorithm>
#include <set>

#include "common/strutil.h"
#include "rddr/plugins.h"

namespace rddr::scenario {

namespace {

bool is_token_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_';
}

// "Name: value" -> "Name"; empty when the line is not header-shaped.
std::string header_name(const std::string& line) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) return "";
  for (size_t i = 0; i < colon; ++i)
    if (!is_token_char(line[i])) return "";
  return line.substr(0, colon);
}

// ParameterStatus payload: 'S' + Int32 length + name NUL value NUL.
std::string pg_param_name(const Bytes& unit_data) {
  if (unit_data.size() <= 5) return "";
  const size_t nul = unit_data.find('\0', 5);
  if (nul == Bytes::npos) return "";
  return unit_data.substr(5, nul - 5);
}

void json_escape(std::string& out, ByteView s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f)
          out += strformat("\\u%04x", c);
        else
          out += static_cast<char>(c);
    }
  }
}

}  // namespace

std::string fingerprint(const core::DivergenceRecord& r,
                        const core::KnownVariance& run_variance) {
  if (r.region_line == SIZE_MAX)
    return "struct|" + r.protocol + "|" + r.unit_kind;

  if (r.protocol == "pgwire") {
    if (r.unit_kind == "pg:S") {
      const std::string name = pg_param_name(r.unit_data);
      if (!name.empty()) return "pgwire|pg:S|param=" + name;
    }
    return "pgwire|" + r.unit_kind;
  }

  if (r.protocol == "http" && r.unit_kind == "http-resp" &&
      !r.unit_data.empty()) {
    // Resolve the diff region against the same comparison form the proxy
    // diffed (ignore rules shift line indices, so the run's variance is
    // required for alignment).
    core::Unit unit;
    unit.data = r.unit_data;
    unit.kind = r.unit_kind;
    const std::vector<std::string> lines =
        core::HttpPlugin().comparable_lines(unit, &run_variance);
    if (r.region_line < lines.size()) {
      if (r.region_line == 0) return "http|status";
      const std::string name = header_name(lines[r.region_line]);
      if (!name.empty()) return "http|hdr=" + name;
      return "http|body";
    }
  }
  return r.protocol + "|" + r.unit_kind;
}

std::string corpus_json(const std::vector<core::DivergenceRecord>& corpus,
                        const core::KnownVariance& run_variance) {
  std::string out = "[";
  for (size_t i = 0; i < corpus.size(); ++i) {
    const core::DivergenceRecord& r = corpus[i];
    if (i) out += ",";
    out += strformat("\n  {\"t_us\":%lld,\"proxy\":\"",
                     static_cast<long long>(r.time / sim::kMicrosecond));
    json_escape(out, r.proxy);
    out += "\",\"protocol\":\"";
    json_escape(out, r.protocol);
    out += "\",\"verdict\":\"";
    json_escape(out, r.verdict);
    out += "\",\"unit_kind\":\"";
    json_escape(out, r.unit_kind);
    out += "\",\"fingerprint\":\"";
    json_escape(out, fingerprint(r, run_variance));
    out += "\",\"reason\":\"";
    json_escape(out, r.reason);
    out += strformat("\",\"region_line\":%lld,\"region_instance\":%lld,",
                     r.region_line == SIZE_MAX
                         ? -1LL
                         : static_cast<long long>(r.region_line),
                     r.region_instance == SIZE_MAX
                         ? -1LL
                         : static_cast<long long>(r.region_instance));
    out += "\"unit_prefix\":\"";
    json_escape(out, ByteView(r.unit_data).substr(
                         0, std::min<size_t>(r.unit_data.size(), 48)));
    out += "\"}";
  }
  out += "\n]";
  return out;
}

MinerReport mine_corpus(const std::vector<core::DivergenceRecord>& corpus,
                        sim::Time benign_until,
                        const core::KnownVariance& run_variance) {
  MinerReport rep;
  rep.tuned = run_variance;

  std::set<std::string> benign_fps;
  for (const core::DivergenceRecord& r : corpus)
    if (r.time < benign_until) benign_fps.insert(fingerprint(r, run_variance));

  for (const core::DivergenceRecord& r : corpus) {
    if (benign_fps.count(fingerprint(r, run_variance)))
      ++rep.benign_records;
    else
      ++rep.true_records;
  }

  // std::set iteration gives the rules a stable, sorted order.
  for (const std::string& fp : benign_fps) {
    constexpr const char* kPgParam = "pgwire|pg:S|param=";
    constexpr const char* kHttpHdr = "http|hdr=";
    if (fp.starts_with(kPgParam)) {
      const std::string name = fp.substr(std::string(kPgParam).size());
      rep.rules.push_back({"pg_param", name});
      auto& v = rep.tuned.pg_ignore_params;
      if (std::find(v.begin(), v.end(), name) == v.end()) v.push_back(name);
    } else if (fp.starts_with(kHttpHdr)) {
      const std::string name = fp.substr(std::string(kHttpHdr).size());
      rep.rules.push_back({"http_header", name});
      auto& v = rep.tuned.http_ignore_headers;
      if (std::find(v.begin(), v.end(), name) == v.end()) v.push_back(name);
    }
  }
  return rep;
}

std::string MinerReport::summary() const {
  std::string out = strformat(
      "miner: benign=%llu true=%llu rate=%.4f rules=%zu\n",
      static_cast<unsigned long long>(benign_records),
      static_cast<unsigned long long>(true_records), benign_rate(),
      rules.size());
  for (const DenoiserRule& r : rules)
    out += strformat("  ignore %s %s\n", r.kind.c_str(), r.name.c_str());
  return out;
}

}  // namespace rddr::scenario
