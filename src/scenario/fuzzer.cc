#include "scenario/fuzzer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "chaos/shrink.h"
#include "common/strutil.h"
#include "netsim/fault.h"
#include "proto/pgwire/pgwire.h"
#include "services/http_service.h"
#include "sqldb/client.h"
#include "workloads/pgbench.h"

namespace rddr::scenario {

namespace {

uint64_t fnv1a(ByteView b) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Bytes valid_startup() {
  return pg::build_startup({{"user", "postgres"}, {"database", "app"}});
}

Bytes http_get(const std::string& target) {
  return strformat("GET %s HTTP/1.1\r\nHost: front\r\n\r\n", target.c_str());
}

AdvStep send_step(Bytes b, sim::Time delay = 0) {
  AdvStep s;
  s.delay = delay;
  s.action = AdvStep::Action::kSend;
  s.bytes = std::move(b);
  return s;
}

AdvStep close_step(sim::Time delay) {
  AdvStep s;
  s.delay = delay;
  s.action = AdvStep::Action::kClose;
  return s;
}

AdvStep abort_step(sim::Time delay) {
  AdvStep s;
  s.delay = delay;
  s.action = AdvStep::Action::kAbort;
  return s;
}

// ---- pgwire payload grammar ----

// 'Q' query message with a lying Int32 length field.
Bytes pg_bad_length_query(Rng& rng) {
  const std::string sql = "SELECT 1";
  Bytes msg = "Q";
  switch (rng.next() % 3) {
    case 0: put_u32_be(msg, 3); break;           // < minimum (4)
    case 1: put_u32_be(msg, 0x7fffff00); break;  // over any sane cap
    default: put_u32_be(msg, 16 * 1024 * 1024 + 5); break;
  }
  msg += sql;
  msg += '\0';
  return msg;
}

Bytes pg_type_flip(Rng& rng) {
  Bytes msg;
  msg += static_cast<char>(rng.next() % 2 ? 0x01 : 0x7f);
  put_u32_be(msg, 8);
  msg += "zzzz";
  return msg;
}

// Raw startup packet with a grammar-level defect.
Bytes pg_bad_startup(Rng& rng) {
  Bytes payload;
  bool lie_about_length = false;
  switch (rng.next() % 3) {
    case 0:  // wrong protocol version
      put_u32_be(payload, 0xdeadbeef);
      payload += "user";
      payload += '\0';
      payload += "postgres";
      payload += '\0';
      payload += '\0';
      break;
    case 1:  // missing params terminator (codec hardening target)
      put_u32_be(payload, 196608);
      payload += "user";
      payload += '\0';
      payload += "postgres";  // no NUL, no terminator
      break;
    default:  // length field over any sane cap
      put_u32_be(payload, 196608);
      payload += "user";
      payload += '\0';
      lie_about_length = true;
      break;
  }
  Bytes msg;
  put_u32_be(msg, lie_about_length
                      ? 64 * 1024 * 1024
                      : static_cast<uint32_t>(payload.size() + 4));
  msg += payload;
  return msg;
}

// ---- http payload grammar ----

// CL.TE desync: strict framing reads Content-Length 4 and then treats the
// smuggled request as a new pipeline element; lenient framing accepts the
// tab-prefixed "chunked" and consumes everything as one body.
Bytes http_smuggle_te_cl() {
  Bytes smuggled =
      "GET /secret HTTP/1.1\r\nHost: front\r\nX-Pad: "
      "0123456789012345678901234567890123456789012345\r\n\r\n";
  Bytes req = strformat(
      "POST /work/1 HTTP/1.1\r\nHost: front\r\nContent-Length: 4\r\n"
      "Transfer-Encoding: \x0b"
      "chunked\r\n\r\n%zx\r\n",
      smuggled.size());
  req += smuggled;
  req += "\r\n0\r\n\r\n";
  return req;
}

Bytes http_cl_corruption(Rng& rng) {
  switch (rng.next() % 3) {
    case 0:
      return "POST /work/2 HTTP/1.1\r\nHost: front\r\n"
             "Content-Length: 512\r\n\r\nshort";
    case 1:
      return "POST /work/2 HTTP/1.1\r\nHost: front\r\n"
             "Content-Length: 99999999999999999999\r\n\r\nx";
    default:
      return "POST /work/2 HTTP/1.1\r\nHost: front\r\n"
             "Content-Length: 4\r\nContent-Length: 11\r\n\r\nAAAABBBBBBB";
  }
}

Bytes http_chunk_corruption(Rng& rng) {
  Bytes head =
      "POST /work/3 HTTP/1.1\r\nHost: front\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  switch (rng.next() % 3) {
    case 0: return head + "zz\r\nbody\r\n0\r\n\r\n";
    case 1: return head + "ffffffffffffffff\r\nbody";
    default: return head + Bytes(400, 'f');  // unbounded chunk-size line
  }
}

// ---- plan generation ----

void append_op(std::vector<AdvOp>& ops, MutationFamily family, sim::Time at,
               std::vector<AdvStep> steps) {
  AdvOp op;
  op.family = family;
  op.at = at;
  op.steps = std::move(steps);
  ops.push_back(std::move(op));
}

void gen_pg_op(std::vector<AdvOp>& ops, MutationFamily f, sim::Time at,
               Rng& rng, int accounts) {
  constexpr sim::Time kMs = sim::kMillisecond;
  switch (f) {
    case MutationFamily::kBenignBurst: {
      std::vector<AdvStep> steps{send_step(valid_startup())};
      for (int q = 0; q < 3; ++q)
        steps.push_back(send_step(
            pg::build_query(workloads::pgbench_select_tx(rng, accounts)),
            15 * kMs));
      steps.push_back(send_step(pg::build_terminate(), 15 * kMs));
      steps.push_back(close_step(40 * kMs));
      append_op(ops, f, at, std::move(steps));
      return;
    }
    case MutationFamily::kPgLengthCorruption:
      append_op(ops, f, at,
                {send_step(valid_startup()),
                 send_step(pg_bad_length_query(rng), 30 * kMs),
                 close_step(120 * kMs)});
      return;
    case MutationFamily::kPgTypeFlip:
      append_op(ops, f, at,
                {send_step(valid_startup()),
                 send_step(pg_type_flip(rng), 30 * kMs),
                 close_step(120 * kMs)});
      return;
    case MutationFamily::kPgPipelineAbuse: {
      Bytes pipeline;
      for (int q = 0; q < 8; ++q)
        pipeline +=
            pg::build_query(workloads::pgbench_select_tx(rng, accounts));
      pipeline += pg::build_terminate();
      append_op(ops, f, at,
                {send_step(valid_startup()),
                 send_step(std::move(pipeline), 25 * kMs),
                 close_step(150 * kMs)});
      return;
    }
    case MutationFamily::kPgPartialWrite: {
      Bytes q = pg::build_query("SELECT bid FROM pgbench_branches");
      const size_t cut = 1 + rng.next() % 4;  // inside the length field
      append_op(ops, f, at,
                {send_step(valid_startup()),
                 send_step(q.substr(0, cut), 25 * kMs),
                 send_step(q.substr(cut), 80 * kMs),
                 send_step(pg::build_terminate(), 30 * kMs),
                 close_step(60 * kMs)});
      return;
    }
    case MutationFamily::kPgSlowloris: {
      Bytes q =
          pg::build_query("SELECT aid FROM pgbench_accounts WHERE aid = 1");
      std::vector<AdvStep> steps{send_step(valid_startup())};
      for (size_t i = 0; i < 6 && i < q.size(); ++i)
        steps.push_back(send_step(q.substr(i, 1), 150 * kMs));
      append_op(ops, f, at, std::move(steps));  // never completes, no close
      return;
    }
    case MutationFamily::kPgMidMessageAbort: {
      Bytes q = pg::build_query("SELECT tbalance FROM pgbench_tellers");
      append_op(ops, f, at,
                {send_step(valid_startup()),
                 send_step(q.substr(0, q.size() / 2), 25 * kMs),
                 abort_step(30 * kMs)});
      return;
    }
    case MutationFamily::kPgStartupCorruption:
      append_op(ops, f, at,
                {send_step(pg_bad_startup(rng)), close_step(120 * kMs)});
      return;
    case MutationFamily::kPgSecretProbe:
      append_op(
          ops, f, at,
          {send_step(valid_startup()),
           send_step(pg::build_query("SELECT s FROM secret_t WHERE k = 1"),
                     25 * kMs),
           send_step(pg::build_terminate(), 150 * kMs), close_step(50 * kMs)});
      return;
    default:
      return;
  }
}

void gen_http_op(std::vector<AdvOp>& ops, MutationFamily f, sim::Time at,
                 Rng& rng) {
  constexpr sim::Time kMs = sim::kMillisecond;
  switch (f) {
    case MutationFamily::kBenignBurst: {
      Bytes burst;
      for (int q = 0; q < 3; ++q)
        burst += http_get(strformat(
            "/work/%llu", static_cast<unsigned long long>(rng.next() % 17)));
      append_op(ops, f, at,
                {send_step(std::move(burst)), close_step(250 * kMs)});
      return;
    }
    case MutationFamily::kHttpSmuggleTeCl:
      append_op(ops, f, at,
                {send_step(http_smuggle_te_cl()), close_step(400 * kMs)});
      return;
    case MutationFamily::kHttpClCorruption:
      append_op(ops, f, at,
                {send_step(http_cl_corruption(rng)), close_step(200 * kMs)});
      return;
    case MutationFamily::kHttpChunkCorruption:
      append_op(ops, f, at,
                {send_step(http_chunk_corruption(rng)), close_step(200 * kMs)});
      return;
    case MutationFamily::kHttpPipelineMalformedMiddle: {
      Bytes b = http_get("/work/4");
      b += "NONSENSE\x01\x02 VERB /\r\n\r\n";
      b += http_get("/work/5");
      append_op(ops, f, at, {send_step(std::move(b)), close_step(250 * kMs)});
      return;
    }
    case MutationFamily::kHttpSlowloris: {
      Bytes req = http_get("/work/9");
      std::vector<AdvStep> steps;
      for (size_t i = 0; i < 8 && i < req.size(); ++i)
        steps.push_back(send_step(req.substr(i, 1), i == 0 ? 0 : 150 * kMs));
      append_op(ops, f, at, std::move(steps));  // never completes, no close
      return;
    }
    case MutationFamily::kHttpPartialAbort: {
      Bytes req = http_get("/work/5");
      append_op(
          ops, f, at,
          {send_step(req.substr(0, req.size() / 2)), abort_step(40 * kMs)});
      return;
    }
    case MutationFamily::kHttpSecretProbe:
      // /dbsecret first (reaches the nested pg edge on the diamond; 404
      // elsewhere) — the direct /secret probe severs the session.
      append_op(ops, f, at,
                {send_step(http_get("/dbsecret/1")),
                 send_step(http_get("/secret"), 150 * kMs),
                 close_step(200 * kMs)});
      return;
    default:
      return;
  }
}

// ---- execution ----

struct BenignOutcome {
  bool resolved = false;
  bool served = false;
  Bytes payload;  // concatenated response rows / body, for the leak scan
};

struct AdvSession {
  sim::ConnPtr conn;
  Bytes rx;
};

class FuzzRunner {
 public:
  FuzzRunner(const FuzzPlan& plan, const FuzzOptions& opts)
      : plan_(plan), opts_(opts), net_(sim_, 10 * sim::kMicrosecond) {}

  FuzzReport run() {
    TopologyOptions topts;
    topts.kind = opts_.topology;
    topts.seed = plan_.seed;
    topts.variance = opts_.variance;
    topts.unit_timeout = opts_.unit_timeout;
    topts.idle_timeout = opts_.idle_timeout;
    topts.islands = opts_.islands;
    topts.on_divergence = [this](const core::DivergenceRecord& r) {
      corpus_.push_back(r);
    };
    topo_ = std::make_unique<Topology>(sim_, net_, topts);

    sim::Time last = opts_.benign_window;

    // Benign workload: one tranche inside the pure-benign prefix, one
    // interleaved with the adversarial phase.
    const size_t nb = opts_.benign_sessions;
    benign_.resize(2 * nb);
    pg_clients_.resize(2 * nb);
    http_clients_.resize(2 * nb);
    for (size_t i = 0; i < nb; ++i) {
      const sim::Time at =
          100 * sim::kMillisecond +
          (nb > 1 ? (opts_.benign_window - 500 * sim::kMillisecond) * i /
                        (nb - 1)
                  : sim::Time{0});
      sim_.schedule_at(at, [this, i] { start_benign(i); });
    }
    for (size_t i = 0; i < nb; ++i) {
      const sim::Time at = opts_.benign_window + 43 * sim::kMillisecond +
                           137 * sim::kMillisecond * i;
      sim_.schedule_at(at, [this, i, nb] { start_benign(nb + i); });
      last = std::max(last, at);
    }

    // Adversarial sessions.
    adv_.resize(plan_.ops.size());
    for (size_t i = 0; i < plan_.ops.size(); ++i) {
      sim_.schedule_at(plan_.ops[i].at, [this, i] { start_op(i); });
      sim::Time end = plan_.ops[i].at;
      for (const AdvStep& s : plan_.ops[i].steps) end += s.delay;
      // Slowloris sessions stay open until the idle shed fires.
      last = std::max(last, end + opts_.idle_timeout);
    }

    // Composed environmental chaos on backend nodes.
    std::unique_ptr<sim::FaultPlan> faults;
    if (opts_.compose_faults) {
      faults = std::make_unique<sim::FaultPlan>(net_);
      Rng frng(plan_.seed ^ 0xfa017ULL);
      const auto& nodes = topo_->backend_nodes();
      for (size_t j = 0; j < nodes.size(); ++j) {
        const sim::Time t0 =
            opts_.benign_window + (97 + 311 * j) * sim::kMillisecond;
        faults->latency_spike(t0, 200 * sim::kMillisecond, nodes[j],
                              (100 + frng.next() % 300) * sim::kMicrosecond);
        if (j % 2 == 0)
          faults->stall_egress(t0 + 650 * sim::kMillisecond,
                               150 * sim::kMillisecond, nodes[j]);
        last = std::max(last, t0 + 900 * sim::kMillisecond);
      }
    }

    sim_.run_until(last + opts_.settle);
    return finish();
  }

 private:
  void start_benign(size_t i) {
    ++issued_;
    Rng qrng(plan_.seed * 1000003ULL + i);
    if (topo_->pg_entry()) {
      auto c = std::make_unique<sqldb::PgClient>(
          net_, strformat("client-%zu", i), topo_->entry(), "postgres");
      sqldb::PgClient* cp = c.get();
      pg_clients_[i] = std::move(c);
      cp->query(topo_->benign_request(i, qrng),
                [this, i, cp](sqldb::QueryOutcome o) {
                  BenignOutcome& b = benign_[i];
                  b.resolved = true;
                  b.served = !o.failed();
                  for (const auto& row : o.rows)
                    for (const auto& cell : row)
                      if (cell) b.payload += *cell;
                  cp->close();
                });
    } else {
      auto c = std::make_unique<services::HttpClient>(
          net_, strformat("client-%zu", i));
      services::HttpClient* cp = c.get();
      http_clients_[i] = std::move(c);
      cp->get(topo_->entry(), topo_->benign_request(i, qrng),
              [this, i](int status, const http::Response* r) {
                BenignOutcome& b = benign_[i];
                b.resolved = true;
                // 403 is the edge's intervention response, 503 the
                // overload shed — only a real app success counts.
                b.served = status == 200;
                if (r) b.payload += r->body;
              });
    }
  }

  void start_op(size_t i) {
    sim::ConnectMeta meta;
    meta.source = strformat("adv-%zu", i);
    AdvSession& s = adv_[i];
    s.conn = net_.connect(topo_->entry(), meta);
    if (!s.conn) return;  // refused (e.g. front-tier shed) — nothing to drive
    AdvSession* sp = &s;
    s.conn->set_on_data([sp](ByteView data) { sp->rx.append(data); });
    if (!plan_.ops[i].steps.empty()) step(i, 0);
  }

  void step(size_t i, size_t j) {
    const AdvStep& st = plan_.ops[i].steps[j];
    sim_.schedule(st.delay, [this, i, j] {
      AdvSession& s = adv_[i];
      const AdvStep& cur = plan_.ops[i].steps[j];
      if (s.conn && s.conn->is_open()) {
        switch (cur.action) {
          case AdvStep::Action::kSend: s.conn->send(cur.bytes); break;
          case AdvStep::Action::kClose: s.conn->close(); break;
          case AdvStep::Action::kAbort: s.conn->abort(); break;
        }
      }
      if (j + 1 < plan_.ops[i].steps.size()) step(i, j + 1);
    });
  }

  FuzzReport finish() {
    FuzzReport r;
    r.benign_until = opts_.benign_window;
    r.topology_desc = topo_->describe();

    r.issued = issued_;
    for (const BenignOutcome& b : benign_) {
      if (!b.resolved) continue;
      if (b.served)
        ++r.served;
      else
        ++r.refused;
    }
    r.lost = r.issued - r.served - r.refused;

    const core::ProxyStats st = topo_->stats();
    r.interventions = topo_->divergences();
    r.quorum_outvotes = st.quorum_outvotes;
    r.idle_sheds = st.idle_sheds;
    r.unit_timeouts = st.timeouts;
    r.corpus = std::move(corpus_);

    // Invariant 1: no version-keyed byte reaches any client.
    for (size_t i = 0; i < adv_.size(); ++i) {
      if (adv_[i].rx.find(kSecretMarker) != Bytes::npos)
        r.violations.push_back(strformat(
            "leak: op %zu (%s) received the secret marker (%zu rx bytes)", i,
            family_name(plan_.ops[i].family), adv_[i].rx.size()));
    }
    for (size_t i = 0; i < benign_.size(); ++i) {
      if (benign_[i].payload.find(kSecretMarker) != Bytes::npos)
        r.violations.push_back(strformat(
            "leak: benign session %zu received the secret marker", i));
    }

    // Invariant 2: no hung proxy sessions after the settle window.
    const size_t live = topo_->active_sessions();
    if (live > 0)
      r.violations.push_back(
          strformat("hang: %zu proxy sessions still live after settle", live));

    // Invariant 3: every benign request resolved, one way or the other.
    if (r.lost > 0)
      r.violations.push_back(strformat(
          "lost: %llu benign requests never resolved (issued=%llu "
          "served=%llu refused=%llu)",
          static_cast<unsigned long long>(r.lost),
          static_cast<unsigned long long>(r.issued),
          static_cast<unsigned long long>(r.served),
          static_cast<unsigned long long>(r.refused)));

    return r;
  }

  FuzzPlan plan_;
  FuzzOptions opts_;
  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<Topology> topo_;
  std::vector<core::DivergenceRecord> corpus_;
  std::vector<BenignOutcome> benign_;
  std::vector<std::unique_ptr<sqldb::PgClient>> pg_clients_;
  std::vector<std::unique_ptr<services::HttpClient>> http_clients_;
  std::vector<AdvSession> adv_;
  uint64_t issued_ = 0;
};

}  // namespace

const char* family_name(MutationFamily f) {
  switch (f) {
    case MutationFamily::kBenignBurst: return "benign-burst";
    case MutationFamily::kPgLengthCorruption: return "pg-length-corruption";
    case MutationFamily::kPgTypeFlip: return "pg-type-flip";
    case MutationFamily::kPgPipelineAbuse: return "pg-pipeline-abuse";
    case MutationFamily::kPgPartialWrite: return "pg-partial-write";
    case MutationFamily::kPgSlowloris: return "pg-slowloris";
    case MutationFamily::kPgMidMessageAbort: return "pg-mid-message-abort";
    case MutationFamily::kPgStartupCorruption: return "pg-startup-corruption";
    case MutationFamily::kPgSecretProbe: return "pg-secret-probe";
    case MutationFamily::kHttpSmuggleTeCl: return "http-smuggle-te-cl";
    case MutationFamily::kHttpClCorruption: return "http-cl-corruption";
    case MutationFamily::kHttpChunkCorruption: return "http-chunk-corruption";
    case MutationFamily::kHttpPipelineMalformedMiddle:
      return "http-pipeline-malformed-middle";
    case MutationFamily::kHttpSlowloris: return "http-slowloris";
    case MutationFamily::kHttpPartialAbort: return "http-partial-abort";
    case MutationFamily::kHttpSecretProbe: return "http-secret-probe";
  }
  return "?";
}

std::vector<MutationFamily> families_for(bool pg_entry) {
  if (pg_entry)
    return {MutationFamily::kBenignBurst,
            MutationFamily::kPgLengthCorruption,
            MutationFamily::kPgTypeFlip,
            MutationFamily::kPgPipelineAbuse,
            MutationFamily::kPgPartialWrite,
            MutationFamily::kPgSlowloris,
            MutationFamily::kPgMidMessageAbort,
            MutationFamily::kPgStartupCorruption,
            MutationFamily::kPgSecretProbe};
  return {MutationFamily::kBenignBurst,
          MutationFamily::kHttpSmuggleTeCl,
          MutationFamily::kHttpClCorruption,
          MutationFamily::kHttpChunkCorruption,
          MutationFamily::kHttpPipelineMalformedMiddle,
          MutationFamily::kHttpSlowloris,
          MutationFamily::kHttpPartialAbort,
          MutationFamily::kHttpSecretProbe};
}

std::string describe(const AdvOp& op) {
  std::string out = strformat(
      "t=%lldms %s:",
      static_cast<long long>(op.at / sim::kMillisecond), family_name(op.family));
  for (const AdvStep& s : op.steps) {
    switch (s.action) {
      case AdvStep::Action::kSend:
        out += strformat(" +%lldms send %zuB/%08llx",
                         static_cast<long long>(s.delay / sim::kMillisecond),
                         s.bytes.size(),
                         static_cast<unsigned long long>(fnv1a(s.bytes) &
                                                         0xffffffffULL));
        break;
      case AdvStep::Action::kClose:
        out += strformat(" +%lldms close",
                         static_cast<long long>(s.delay / sim::kMillisecond));
        break;
      case AdvStep::Action::kAbort:
        out += strformat(" +%lldms abort",
                         static_cast<long long>(s.delay / sim::kMillisecond));
        break;
    }
  }
  return out;
}

std::string describe(const FuzzPlan& plan) {
  std::string out = strformat("fuzz plan seed=%llu topology=%s ops=%zu\n",
                              static_cast<unsigned long long>(plan.seed),
                              Topology::kind_name(plan.topology),
                              plan.ops.size());
  for (const AdvOp& op : plan.ops) out += "  " + describe(op) + "\n";
  return out;
}

FuzzPlan generate_fuzz_plan(uint64_t seed, const FuzzOptions& opts) {
  FuzzPlan plan;
  plan.seed = seed;
  plan.topology = opts.topology;

  Rng rng(seed ^ 0xf0220ULL);
  const bool pg = opts.topology == 0;
  const std::vector<MutationFamily> families = families_for(pg);
  const int accounts = 50;  // matches Topology's pgbench load

  sim::Time at = opts.benign_window + 60 * sim::kMillisecond;
  for (int round = 0; round < opts.ops_per_family; ++round) {
    for (MutationFamily f : families) {
      Rng op_rng = rng.fork(static_cast<uint64_t>(f) * 1000 +
                            static_cast<uint64_t>(round));
      if (pg)
        gen_pg_op(plan.ops, f, at, op_rng, accounts);
      else
        gen_http_op(plan.ops, f, at, op_rng);
      at += 120 * sim::kMillisecond;
    }
  }
  return plan;
}

FuzzReport run_fuzz(const FuzzPlan& plan, const FuzzOptions& opts) {
  FuzzRunner runner(plan, opts);
  return runner.run();
}

FuzzReport run_fuzz_seed(uint64_t seed, const FuzzOptions& opts) {
  return run_fuzz(generate_fuzz_plan(seed, opts), opts);
}

FuzzPlan shrink_fuzz_plan(const FuzzPlan& plan, const FuzzOptions& opts) {
  const auto fails = [&](const std::vector<AdvOp>& ops) {
    FuzzPlan candidate = plan;
    candidate.ops = ops;
    return !run_fuzz(candidate, opts).ok();
  };
  if (!fails(plan.ops)) return plan;

  FuzzPlan shrunk = plan;
  // Pass 1: drop whole adversarial sessions.
  shrunk.ops = chaos::shrink_drop_pass(shrunk.ops, fails);
  // Pass 2: drop individual steps within each surviving session.
  for (size_t i = 0; i < shrunk.ops.size(); ++i) {
    shrunk.ops[i].steps = chaos::shrink_drop_pass(
        shrunk.ops[i].steps, [&](const std::vector<AdvStep>& steps) {
          FuzzPlan candidate = shrunk;
          candidate.ops[i].steps = steps;
          return !run_fuzz(candidate, opts).ok();
        });
  }
  return shrunk;
}

std::string FuzzReport::summary() const {
  std::string out = strformat(
      "%s issued=%llu served=%llu refused=%llu lost=%llu "
      "interventions=%llu outvotes=%llu idle_sheds=%llu unit_timeouts=%llu "
      "corpus=%zu\n",
      ok() ? "ok" : "FAIL", static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(refused),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(interventions),
      static_cast<unsigned long long>(quorum_outvotes),
      static_cast<unsigned long long>(idle_sheds),
      static_cast<unsigned long long>(unit_timeouts), corpus.size());
  for (const std::string& v : violations) out += "  violation: " + v + "\n";
  return out;
}

}  // namespace rddr::scenario
