#include "scenario/topology.h"

#include <utility>

#include "netsim/parallel.h"

#include "common/strutil.h"
#include "proto/http/message.h"
#include "rddr/plugins.h"
#include "sqldb/client.h"
#include "workloads/pgbench.h"

namespace rddr::scenario {

namespace {

// Version tags per pool: slots 0/1 are the identical-image filter pair,
// slot 2 the diverse version. The per-version build stamps below are
// keyed by tag, so the pair always agrees on them and the diverse
// instance always differs — deterministic benign variance for the miner.
constexpr const char* kPgPairTag = "13.0";
constexpr const char* kPgDiverseTag = "10.7";
constexpr const char* kHttpPairTag = "2.4.1";
constexpr const char* kHttpDiverseTag = "2.5.0";

std::string build_stamp(const std::string& tag) { return "build-" + tag; }

std::string secret_for(const std::string& tag, uint64_t seed) {
  return strformat("%s%s-%06llx", kSecretMarker, tag.c_str(),
                   static_cast<unsigned long long>(
                       (seed * 0x9e3779b97f4a7c15ULL) & 0xffffff));
}

uint64_t fnv1a(ByteView b) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Lenient framing for the diverse HTTP app instance: recognises
// "\x0bchunked" as chunked and tolerates duplicate Content-Length — the
// parser-diversity levers behind the smuggling mutation families.
http::ParserOptions lenient_parser() {
  http::ParserOptions p;
  p.te_whitespace = http::TeWhitespace::kAnyWhitespace;
  p.reject_duplicate_cl = false;
  return p;
}

}  // namespace

const char* Topology::kind_name(int kind) {
  switch (kind) {
    case 0: return "pg-direct";
    case 1: return "http-fanout";
    case 2: return "http-diamond-pg";
  }
  return "?";
}

Topology::Topology(sim::Simulator& sim, sim::Network& net,
                   TopologyOptions opts)
    : sim_(sim), net_(net), opts_(std::move(opts)),
      rng_(opts_.seed ^ 0x70b01057ULL) {
  desc_ = strformat("topology %s seed %llu\n", kind_name(opts_.kind),
                    static_cast<unsigned long long>(opts_.seed));
  switch (opts_.kind) {
    case 0: build_pg_direct(); break;
    case 1: build_http_fanout(); break;
    case 2: build_http_diamond(); break;
    default: build_pg_direct(); break;
  }
  apply_islands();
}

void Topology::apply_islands() {
  if (opts_.islands == 0) return;
  sim::ParallelOptions popts;
  sim::Network* net = &net_;
  popts.lookahead_provider = [net] { return net->min_link_latency(); };
  sim_.configure_islands(opts_.islands, popts);
  // Every service host and every listening node joins one island; the
  // fuzz harness's clients stay on island 0 and reach the graph across
  // the entry links, whose latency bounds the executor's lookahead.
  const IslandId isl = opts_.islands == 1 ? 0 : 1;
  for (auto& h : hosts_) h->pin_island(isl);
  for (const std::string& n : net_.listener_nodes())
    net_.set_node_island(n, isl);
}

Topology::~Topology() = default;

void Topology::sample_latency(const std::string& node) {
  const sim::Time extra =
      20 * sim::kMicrosecond +
      static_cast<sim::Time>(rng_.next() % (180ULL * sim::kMicrosecond));
  net_.set_node_extra_latency(node, extra);
  desc_ += strformat("  %s +%lldus\n", node.c_str(),
                     static_cast<long long>(extra / sim::kMicrosecond));
}

std::vector<std::string> Topology::make_pg_pool(const std::string& base,
                                                sim::Host& host) {
  const char* tags[3] = {kPgPairTag, kPgPairTag, kPgDiverseTag};
  std::vector<std::string> addresses;
  for (size_t i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info(tags[i]));
    workloads::load_pgbench(*db, accounts_, /*seed=*/9);
    // Version-keyed secret: the pair shares one value, the diverse
    // instance holds another, so any response carrying it diverges and
    // is blocked under kStrict — the leak invariant's tripwire.
    auto* t = db->create_table(
        "secret_t", {{"k", sqldb::Type::kInt}, {"s", sqldb::Type::kText}});
    t->rows.push_back({sqldb::Datum::integer(1),
                       sqldb::Datum::text(secret_for(tags[i], opts_.seed))});
    dbs_.push_back(db);

    sqldb::SqlServer::Options so;
    so.address = strformat("%s-%zu:5432", base.c_str(), i);
    so.rng_seed = rng_.fork(0x9000 + i).next();
    so.startup_params = {{"build_sha", build_stamp(tags[i])}};
    sql_servers_.push_back(
        std::make_unique<sqldb::SqlServer>(net_, host, db, so));
    addresses.push_back(so.address);
    backend_nodes_.push_back(strformat("%s-%zu", base.c_str(), i));
    sample_latency(backend_nodes_.back());
  }
  desc_ += strformat("  pool %s: %s %s %s\n", base.c_str(), tags[0],
                     tags[1], tags[2]);
  return addresses;
}

void Topology::build_pg_direct() {
  hosts_.push_back(std::make_unique<sim::Host>(sim_, "db-host", 8, 8LL << 30));
  hosts_.push_back(
      std::make_unique<sim::Host>(sim_, "proxy-host", 4, 4LL << 30));
  std::vector<std::string> addresses = make_pg_pool("pg", *hosts_[0]);

  entry_ = "front:5432";
  entry_dep_ = core::NVersionDeployment::Builder()
                   .name("edge-pg")
                   .listen(entry_)
                   .versions(addresses)
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .degradation(core::DegradationPolicy::kStrict)
                   .variance(opts_.variance)
                   .unit_timeout(opts_.unit_timeout)
                   .idle_timeout(opts_.idle_timeout)
                   .on_divergence(opts_.on_divergence)
                   .build(net_, *hosts_[1]);
}

void Topology::build_http_fanout() {
  hosts_.push_back(
      std::make_unique<sim::Host>(sim_, "leaf-host", 8, 8LL << 30));
  hosts_.push_back(std::make_unique<sim::Host>(sim_, "app-host", 8, 8LL << 30));
  hosts_.push_back(
      std::make_unique<sim::Host>(sim_, "front-host", 4, 4LL << 30));

  // Shared, unprotected leaf tier: deterministic content keyed by
  // (leaf, path) with a sampled per-leaf payload size, so every app
  // instance aggregates identical leaf data.
  fanout_ = 2 + rng_.next() % 3;  // K in [2, 4]
  std::vector<std::string> leaf_addrs;
  for (size_t k = 0; k < fanout_; ++k) {
    services::HttpServer::Options lo;
    lo.address = strformat("leaf-%zu:80", k);
    const size_t payload = 40 + rng_.next() % 400;
    desc_ += strformat("  leaf-%zu payload %zu\n", k, payload);
    auto leaf =
        std::make_unique<services::HttpServer>(net_, *hosts_[0], lo);
    leaf->set_handler([k, payload](const http::Request& req,
                                   services::Responder respond) {
      Bytes body = strformat("leaf-%zu %s ", k, req.target.c_str());
      while (body.size() < payload)
        body += strformat("%02zx", (body.size() * 31 + k) & 0xff);
      respond(http::make_response(200, body, "text/plain"));
    });
    http_servers_.push_back(std::move(leaf));
    leaf_addrs.push_back(lo.address);
    backend_nodes_.push_back(strformat("leaf-%zu", k));
    sample_latency(backend_nodes_.back());
  }

  // Protected app tier: pair + diverse parser/build, each instance
  // fanning every /work request out to all K leaves.
  const char* tags[3] = {kHttpPairTag, kHttpPairTag, kHttpDiverseTag};
  std::vector<std::string> app_addrs;
  for (size_t i = 0; i < 3; ++i) {
    services::HttpServer::Options ao;
    ao.address = strformat("app-%zu:80", i);
    if (i == 2) ao.parser = lenient_parser();
    auto app = std::make_unique<services::HttpServer>(net_, *hosts_[1], ao);
    auto client = std::make_unique<services::HttpClient>(
        net_, strformat("app-%zu", i));
    services::HttpClient* cp = client.get();
    const std::string stamp = build_stamp(tags[i]);
    const std::string secret = secret_for(tags[i], opts_.seed);
    app->set_handler([cp, leaf_addrs, stamp, secret](
                         const http::Request& req,
                         services::Responder respond) {
      if (req.target == "/secret") {
        http::Response r = http::make_response(200, secret, "text/plain");
        r.headers.set("X-Backend-Build", stamp);
        respond(r);
        return;
      }
      if (!req.target.starts_with("/work/")) {
        http::Response r = http::make_response(404, "not here");
        r.headers.set("X-Backend-Build", stamp);
        respond(r);
        return;
      }
      struct Fan {
        size_t remaining;
        std::vector<std::string> parts;
      };
      auto fan = std::make_shared<Fan>();
      fan->remaining = leaf_addrs.size();
      fan->parts.resize(leaf_addrs.size());
      const std::string sub = "/data" + req.target.substr(5);
      for (size_t k = 0; k < leaf_addrs.size(); ++k) {
        cp->get(leaf_addrs[k], sub,
                [fan, k, respond, stamp](int status,
                                         const http::Response* lr) {
                  fan->parts[k] =
                      status > 0 && lr
                          ? strformat("leaf%zu=%016llx", k,
                                      static_cast<unsigned long long>(
                                          fnv1a(lr->body)))
                          : strformat("leaf%zu=err", k);
                  if (--fan->remaining > 0) return;
                  Bytes body;
                  for (const std::string& p : fan->parts)
                    body += p + "\n";
                  http::Response r =
                      http::make_response(200, body, "text/plain");
                  r.headers.set("X-Backend-Build", stamp);
                  respond(r);
                });
      }
    });
    http_servers_.push_back(std::move(app));
    http_clients_.push_back(std::move(client));
    app_addrs.push_back(ao.address);
    backend_nodes_.push_back(strformat("app-%zu", i));
    sample_latency(backend_nodes_.back());
  }
  desc_ += strformat("  apps: %s %s %s, fan-out %zu\n", tags[0], tags[1],
                     tags[2], fanout_);

  entry_ = "front:80";
  frontier_ = core::NVersionDeployment::Builder()
                  .name("edge-http")
                  .listen(entry_)
                  .versions(app_addrs)
                  .plugin(std::make_shared<core::HttpPlugin>())
                  .filter_pair(true)
                  .degradation(core::DegradationPolicy::kStrict)
                  .variance(opts_.variance)
                  .unit_timeout(opts_.unit_timeout)
                  .idle_timeout(opts_.idle_timeout)
                  .on_divergence(opts_.on_divergence)
                  .shards(2)
                  .build_frontier(net_, *hosts_[2]);
}

void Topology::build_http_diamond() {
  hosts_.push_back(std::make_unique<sim::Host>(sim_, "db-host", 8, 8LL << 30));
  hosts_.push_back(std::make_unique<sim::Host>(sim_, "mid-host", 8, 8LL << 30));
  hosts_.push_back(std::make_unique<sim::Host>(sim_, "app-host", 8, 8LL << 30));
  hosts_.push_back(
      std::make_unique<sim::Host>(sim_, "proxy-host", 4, 4LL << 30));
  hosts_.push_back(
      std::make_unique<sim::Host>(sim_, "inner-proxy-host", 4, 4LL << 30));

  // Inner protected edge: shared pgwire RDDR deployment both mids dial.
  std::vector<std::string> pg_addrs = make_pg_pool("pg", *hosts_[0]);
  inner_dep_ = core::NVersionDeployment::Builder()
                   .name("edge-inner-pg")
                   .listen("inner:5432")
                   .versions(pg_addrs)
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .degradation(core::DegradationPolicy::kStrict)
                   .variance(opts_.variance)
                   .unit_timeout(opts_.unit_timeout)
                   .idle_timeout(opts_.idle_timeout)
                   .on_divergence(opts_.on_divergence)
                   .build(net_, *hosts_[4]);

  // Shared mid tier (the diamond's waist): one pg session per request
  // through the inner edge. Responses depend only on stable table state,
  // so every app instance sees identical mid output.
  const int accounts = accounts_;
  for (size_t k = 0; k < 2; ++k) {
    services::HttpServer::Options mo;
    mo.address = strformat("mid-%zu:80", k);
    auto mid = std::make_unique<services::HttpServer>(net_, *hosts_[1], mo);
    sim::Network* netp = &net_;
    mid->set_handler([netp, k, accounts](const http::Request& req,
                                         services::Responder respond) {
      std::string sql;
      if (req.target.starts_with("/sum/")) {
        int n = std::atoi(req.target.c_str() + 5);
        sql = strformat(
            "SELECT abalance FROM pgbench_accounts WHERE aid = %d",
            n % accounts + 1);
      } else if (req.target.starts_with("/secret/")) {
        sql = "SELECT s FROM secret_t WHERE k = 1";
      } else {
        respond(http::make_response(404, "not here"));
        return;
      }
      auto pgc = std::make_shared<sqldb::PgClient>(
          *netp, strformat("mid-%zu", k), "inner:5432", "postgres");
      pgc->query(sql, [pgc, respond, k](sqldb::QueryOutcome o) {
        Bytes body;
        if (o.failed() || o.rows.empty() || o.rows[0].empty() ||
            !o.rows[0][0]) {
          body = strformat("mid%zu err\n", k);
        } else {
          body = strformat("mid%zu val=%s\n", k, o.rows[0][0]->c_str());
        }
        respond(http::make_response(200, body, "text/plain"));
        pgc->close();
      });
    });
    http_servers_.push_back(std::move(mid));
    backend_nodes_.push_back(strformat("mid-%zu", k));
    sample_latency(backend_nodes_.back());
  }

  // Protected app tier: diamond fan-out to both mids.
  const char* tags[3] = {kHttpPairTag, kHttpPairTag, kHttpDiverseTag};
  std::vector<std::string> app_addrs;
  for (size_t i = 0; i < 3; ++i) {
    services::HttpServer::Options ao;
    ao.address = strformat("app-%zu:80", i);
    if (i == 2) ao.parser = lenient_parser();
    auto app = std::make_unique<services::HttpServer>(net_, *hosts_[2], ao);
    auto client = std::make_unique<services::HttpClient>(
        net_, strformat("app-%zu", i));
    services::HttpClient* cp = client.get();
    const std::string stamp = build_stamp(tags[i]);
    const std::string secret = secret_for(tags[i], opts_.seed);
    app->set_handler([cp, stamp, secret](const http::Request& req,
                                         services::Responder respond) {
      if (req.target == "/secret") {
        http::Response r = http::make_response(200, secret, "text/plain");
        r.headers.set("X-Backend-Build", stamp);
        respond(r);
        return;
      }
      std::string t0, t1;
      if (req.target.starts_with("/work/")) {
        const std::string n = req.target.substr(6);
        t0 = "/sum/" + n;
        t1 = "/sum/" + std::to_string(std::atoi(n.c_str()) + 7);
      } else if (req.target.starts_with("/dbsecret")) {
        t0 = "/secret/1";
        t1 = "/sum/1";
      } else {
        http::Response r = http::make_response(404, "not here");
        r.headers.set("X-Backend-Build", stamp);
        respond(r);
        return;
      }
      struct Fan {
        size_t remaining = 2;
        std::string parts[2];
      };
      auto fan = std::make_shared<Fan>();
      auto arm = [cp, fan, respond, stamp](size_t idx,
                                           const std::string& addr,
                                           const std::string& target) {
        cp->get(addr, target,
                [fan, idx, respond, stamp](int status,
                                           const http::Response* mr) {
                  fan->parts[idx] = status > 0 && mr
                                        ? std::string(mr->body)
                                        : std::string("err\n");
                  if (--fan->remaining > 0) return;
                  http::Response r = http::make_response(
                      200, fan->parts[0] + fan->parts[1], "text/plain");
                  r.headers.set("X-Backend-Build", stamp);
                  respond(r);
                });
      };
      arm(0, "mid-0:80", t0);
      arm(1, "mid-1:80", t1);
    });
    http_servers_.push_back(std::move(app));
    http_clients_.push_back(std::move(client));
    app_addrs.push_back(ao.address);
    backend_nodes_.push_back(strformat("app-%zu", i));
    sample_latency(backend_nodes_.back());
  }
  desc_ += strformat("  apps: %s %s %s over 2 mids\n", tags[0], tags[1],
                     tags[2]);

  entry_ = "front:80";
  entry_dep_ = core::NVersionDeployment::Builder()
                   .name("edge-http")
                   .listen(entry_)
                   .versions(app_addrs)
                   .plugin(std::make_shared<core::HttpPlugin>())
                   .filter_pair(true)
                   .degradation(core::DegradationPolicy::kStrict)
                   .variance(opts_.variance)
                   .unit_timeout(opts_.unit_timeout)
                   .idle_timeout(opts_.idle_timeout)
                   .on_divergence(opts_.on_divergence)
                   .build(net_, *hosts_[3]);
}

core::ProxyStats Topology::stats() const {
  core::ProxyStats s;
  if (entry_dep_) s += entry_dep_->aggregate_stats();
  if (inner_dep_) s += inner_dep_->aggregate_stats();
  if (frontier_)
    for (size_t k = 0; k < frontier_->shard_count(); ++k)
      s += frontier_->shard(k).aggregate_stats();
  return s;
}

size_t Topology::active_sessions() const {
  size_t n = 0;
  if (entry_dep_) n += entry_dep_->incoming().active_sessions();
  if (inner_dep_) n += inner_dep_->incoming().active_sessions();
  if (frontier_)
    for (size_t k = 0; k < frontier_->shard_count(); ++k)
      n += frontier_->shard(k).incoming().active_sessions();
  return n;
}

uint64_t Topology::divergences() const {
  uint64_t n = 0;
  if (entry_dep_) n += entry_dep_->divergences();
  if (inner_dep_) n += inner_dep_->divergences();
  if (frontier_)
    for (size_t k = 0; k < frontier_->shard_count(); ++k)
      n += frontier_->shard(k).divergences();
  return n;
}

std::string Topology::describe() const { return desc_; }

std::string Topology::benign_request(size_t i, Rng& rng) const {
  if (pg_entry()) return workloads::pgbench_select_tx(rng, accounts_);
  return strformat("/work/%zu", i % 17);
}

}  // namespace rddr::scenario
