// Protocol-aware adversarial fuzzer over generated topologies.
//
// A fuzz plan is a seeded schedule of adversarial client sessions against
// a Topology's entry edge, drawn from grammar-driven mutation families
// per protocol (length-field corruption, pipelining abuse, request
// smuggling variants, partial writes, slowloris-paced sends, mid-message
// connection drops, version-keyed secret probes). Sessions run as raw
// byte-stream clients on the virtual clock, optionally composed with
// netsim::FaultPlan chaos on the backend nodes, alongside a benign
// workload whose outcomes are fully accounted.
//
// run_fuzz checks the chaos harness's invariants, adapted to RDDR edges:
//   1. leak      — no client-received byte sequence contains the
//                  version-keyed secret marker (kStrict must block every
//                  response that could carry per-version data);
//   2. no hang   — zero live proxy sessions after the settle window
//                  (slowloris must be shed, aborted sessions torn down);
//   3. no lost   — every benign request resolves: issued == served +
//                  refused (an intervention-severed session is a visible
//                  refusal, never silence).
// Everything is deterministic per seed: same seed, byte-identical
// FuzzReport::summary() and divergence corpus.
//
// Failures shrink to a 1-minimal repro via the shared greedy drop pass
// (chaos/shrink.h): first whole sessions, then steps within sessions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "rddr/divergence.h"
#include "rddr/plugin.h"
#include "scenario/topology.h"

namespace rddr::scenario {

enum class MutationFamily {
  /// Valid pipelined traffic from an "attacker" source (control group).
  kBenignBurst,
  // -- pgwire --
  kPgLengthCorruption,   // Int32 length field lies (huge / < 4)
  kPgTypeFlip,           // non-printable message type byte
  kPgPipelineAbuse,      // one send() carrying a deep query pipeline
  kPgPartialWrite,       // message split at an awkward boundary, then resumed
  kPgSlowloris,          // bytes dripped below any progress threshold
  kPgMidMessageAbort,    // connection severed inside a message
  kPgStartupCorruption,  // malformed startup packet
  kPgSecretProbe,        // valid query for the version-keyed secret row
  // -- http --
  kHttpSmuggleTeCl,             // CL.TE desync across parser diversity
  kHttpClCorruption,            // Content-Length overclaims the body
  kHttpChunkCorruption,         // bogus chunk-size line
  kHttpPipelineMalformedMiddle, // valid, garbage, valid in one send
  kHttpSlowloris,               // header bytes dripped forever
  kHttpPartialAbort,            // half a request, then abort()
  kHttpSecretProbe,             // valid GET for the version-keyed secret
};

const char* family_name(MutationFamily f);

/// The families applicable to an entry edge speaking pgwire / HTTP.
std::vector<MutationFamily> families_for(bool pg_entry);

/// One timed action within an adversarial session.
struct AdvStep {
  enum class Action { kSend, kClose, kAbort };
  /// Delay after the previous step (or after connect for the first).
  sim::Time delay = 0;
  Action action = Action::kSend;
  Bytes bytes;  // kSend payload
};

/// One adversarial session: a connection opened at `at`, driven through
/// `steps`. Sessions from different ops overlap freely.
struct AdvOp {
  MutationFamily family = MutationFamily::kBenignBurst;
  sim::Time at = 0;
  std::vector<AdvStep> steps;
};

struct FuzzPlan {
  uint64_t seed = 0;
  int topology = 0;
  std::vector<AdvOp> ops;
};

std::string describe(const AdvOp& op);
std::string describe(const FuzzPlan& plan);

struct FuzzOptions {
  /// Topology kind, in [0, Topology::kKinds).
  int topology = 0;
  /// Benign sessions in the pure-benign prefix window, and again
  /// interleaved with the adversarial phase.
  size_t benign_sessions = 12;
  /// Length of the pure-benign prefix. Corpus records timestamped inside
  /// it are benign by construction — the miner's labelled window.
  sim::Time benign_window = 2 * sim::kSecond;
  /// Adversarial sessions generated per applicable family.
  int ops_per_family = 2;
  /// Quiet time after the last scheduled activity before invariants run.
  sim::Time settle = 2 * sim::kSecond;
  /// Known-variance rules for every RDDR edge (default = pre-mining).
  core::KnownVariance variance;
  /// Compose deterministic latency spikes / egress stalls on backend
  /// nodes with the adversarial schedule.
  bool compose_faults = false;
  /// Per-edge knobs, forwarded to TopologyOptions. idle_timeout 0 turns
  /// the slowloris shed off — the no-hang invariant's self-test.
  sim::Time unit_timeout = 250 * sim::kMillisecond;
  sim::Time idle_timeout = 600 * sim::kMillisecond;
  /// Forwarded to TopologyOptions::islands (0 = legacy single loop). The
  /// report must be identical for every islands value >= 1.
  size_t islands = 0;
};

struct FuzzReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }

  // Benign-workload accounting (no lost: issued == served + refused).
  uint64_t issued = 0;
  uint64_t served = 0;
  uint64_t refused = 0;
  uint64_t lost = 0;

  // Edge behaviour under attack.
  uint64_t interventions = 0;
  uint64_t quorum_outvotes = 0;
  uint64_t idle_sheds = 0;
  uint64_t unit_timeouts = 0;

  /// End of the pure-benign prefix (miner label boundary).
  sim::Time benign_until = 0;
  /// Every divergence the edges recorded, in bus order.
  std::vector<core::DivergenceRecord> corpus;
  /// Topology::describe() of the graph the plan ran against.
  std::string topology_desc;

  /// Deterministic single-string digest — the per-seed determinism
  /// comparison surface (same seed must reproduce it byte-for-byte).
  std::string summary() const;
};

/// Generates the seeded adversarial schedule: ops_per_family sessions for
/// every family applicable to the topology's entry protocol, staggered
/// after the benign prefix. Same (seed, opts), same plan.
FuzzPlan generate_fuzz_plan(uint64_t seed, const FuzzOptions& opts);

/// Executes the plan on a fresh simulator and checks the invariants.
FuzzReport run_fuzz(const FuzzPlan& plan, const FuzzOptions& opts);

/// generate + run.
FuzzReport run_fuzz_seed(uint64_t seed, const FuzzOptions& opts);

/// Greedy shrink of a failing plan to a 1-minimal repro preserving
/// "still violates some invariant": drops whole sessions, then steps
/// within surviving sessions. Deterministic; returns the plan unchanged
/// if it does not fail under `opts`.
FuzzPlan shrink_fuzz_plan(const FuzzPlan& plan, const FuzzOptions& opts);

}  // namespace rddr::scenario
