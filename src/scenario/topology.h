// Seeded topology generator for the scenario factory (ROADMAP item 5).
//
// In the spirit of Ditto's generated service graphs, one integer seed
// synthesizes a small N-tier topology over the existing building blocks
// (sqldb replicas, HttpServer apps, shared leaf services) with sampled
// per-node latencies and payload sizes, and drops RDDR deployments on
// chosen edges through the one construction path the rest of the repo
// uses (NVersionDeployment::Builder / build_frontier).
//
// Three graph shapes cover the protocol/edge mixes the fuzzer needs:
//
//   kind 0  "pg-direct"       client -> RDDR(pgwire, strict) -> 3x minipg
//   kind 1  "http-fanout"     client -> Frontier(http, 2 shards)
//                                    -> 3x app --fan-out--> K shared leaves
//   kind 2  "http-diamond-pg" client -> RDDR(http) -> 3x app -> 2 shared
//                                    mids -> RDDR(pgwire) -> 3x minipg
//
// Every protected pool is a filter pair (two identical-image instances)
// plus one diverse version, under kStrict degradation: any response
// divergence is blocked, which is what makes the fuzzer's leak invariant
// meaningful. Each topology plants version-keyed secrets ("SECRET-<tag>")
// that only a divergence-protected path can reach, and stamps per-version
// benign variance (a build_sha ParameterStatus, an X-Backend-Build
// header) that the corpus miner must learn to ignore (paper §IV-B4).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "rddr/deployment.h"
#include "rddr/frontier.h"
#include "services/http_service.h"
#include "sqldb/server.h"

namespace rddr::scenario {

/// Marker planted in every version-keyed secret. The fuzzer's leak
/// invariant scans all client-received bytes for it.
inline constexpr const char* kSecretMarker = "SECRET-";

struct TopologyOptions {
  /// Graph shape, in [0, Topology::kKinds).
  int kind = 0;
  /// Drives every sampled quantity (latencies, sizes, fan-out width).
  uint64_t seed = 1;
  /// Known-variance rules applied to every RDDR edge. The default rules
  /// do NOT cover the per-version build stamps this topology plants —
  /// running with the default measures the pre-mining benign-divergence
  /// rate; running with the miner's tuned variance measures the after.
  core::KnownVariance variance;
  /// Corpus hook threaded into every RDDR edge (each deployment's
  /// DivergenceBus record stream, via Builder::on_divergence): fired per
  /// intervention and per quorum outvote.
  std::function<void(const core::DivergenceRecord&)> on_divergence;
  /// Per-unit compare timeout on every edge, so composed stall faults
  /// produce visible aborts instead of hangs.
  sim::Time unit_timeout = 250 * sim::kMillisecond;
  /// Idle-session read timeout on every edge (the slowloris shed knob;
  /// 0 disables it — the fuzzer's self-test uses that to prove the
  /// no-hang invariant actually fires).
  sim::Time idle_timeout = 600 * sim::kMillisecond;
  /// Partition the simulation into this many islands (0 = legacy single
  /// loop). The service graph is one tightly coupled column (shared
  /// hosts, same-tick fan-out joins), so it is pinned to one island and
  /// the harness drives it from island 0 across the entry links; any
  /// islands value >= 1 must produce an identical run.
  size_t islands = 0;
};

class Topology {
 public:
  static constexpr int kKinds = 3;
  static const char* kind_name(int kind);

  /// Builds the whole graph over the caller's simulator/network. All
  /// randomness comes from opts.seed; same seed, same graph.
  Topology(sim::Simulator& sim, sim::Network& net, TopologyOptions opts);
  ~Topology();
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  const TopologyOptions& options() const { return opts_; }

  /// Address clients (benign and adversarial) dial.
  const std::string& entry() const { return entry_; }
  /// True when the entry edge speaks pgwire (kind 0), else HTTP.
  bool pg_entry() const { return opts_.kind == 0; }

  /// Node names carrying backend traffic — targets for composed
  /// netsim::FaultPlan chaos (latency spikes, egress stalls).
  const std::vector<std::string>& backend_nodes() const {
    return backend_nodes_;
  }

  /// Aggregate proxy stats over every RDDR edge in the graph.
  core::ProxyStats stats() const;
  /// Live sessions across every RDDR edge (the fuzzer's no-hang check).
  size_t active_sessions() const;
  /// Interventions across every edge's bus.
  uint64_t divergences() const;

  /// One line per sampled property (latencies, fan-out, tags) — the
  /// build-determinism comparison surface.
  std::string describe() const;

  /// A benign request for sequence number i: SQL text for pg entries, an
  /// HTTP request target for http entries.
  std::string benign_request(size_t i, Rng& rng) const;

  /// Number of pgbench accounts loaded into sql pools (query generation).
  int accounts() const { return accounts_; }

 private:
  void apply_islands();
  void build_pg_direct();
  void build_http_fanout();
  void build_http_diamond();

  /// Deploys a 3-instance minipg pool (pair tag + diverse tag) with
  /// pgbench data, a version-keyed secret_t table, and a per-version
  /// build_sha startup parameter. Returns the instance addresses.
  std::vector<std::string> make_pg_pool(const std::string& base,
                                        sim::Host& host);
  /// Samples a small per-node extra latency and applies it.
  void sample_latency(const std::string& node);

  sim::Simulator& sim_;
  sim::Network& net_;
  TopologyOptions opts_;
  Rng rng_;
  int accounts_ = 50;
  size_t fanout_ = 0;  // leaves (kind 1)

  std::vector<std::unique_ptr<sim::Host>> hosts_;
  std::vector<std::shared_ptr<sqldb::Database>> dbs_;
  std::vector<std::unique_ptr<sqldb::SqlServer>> sql_servers_;
  std::vector<std::unique_ptr<services::HttpServer>> http_servers_;
  std::vector<std::unique_ptr<services::HttpClient>> http_clients_;
  std::unique_ptr<core::NVersionDeployment> entry_dep_;
  std::unique_ptr<core::Frontier> frontier_;
  std::unique_ptr<core::NVersionDeployment> inner_dep_;

  std::string entry_;
  std::vector<std::string> backend_nodes_;
  std::string desc_;
};

}  // namespace rddr::scenario
