// Divergence corpus + miner (the feedback loop of ROADMAP item 5).
//
// Every divergence an RDDR edge reports during a fuzz run is captured as
// a core::DivergenceRecord (via the deployment's DivergenceBus record
// stream, subscribed through Builder::on_divergence) and
// fingerprinted: protocol, unit kind, and the canonical diff region the
// DiffEngine located, resolved to a semantic name where the grammar
// allows (a pgwire ParameterStatus parameter name, an HTTP header name).
//
// The miner then exploits the fuzz schedule's labelled structure: the
// benign-only prefix window contains, by construction, only divergences
// caused by acceptable cross-version variance (build stamps, banners).
// Fingerprints first seen there are classified benign; everything else is
// a true divergence. For each benign fingerprint with a recognised
// grammar position the miner proposes a concrete denoiser rule
// (KnownVariance::pg_ignore_params / http_ignore_headers entry) and
// returns the tuned variance, so a re-run can demonstrate the
// benign-divergence rate dropping (paper §IV-B4: deciding which
// divergences matter is the hard part of N-versioning).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rddr/divergence.h"
#include "rddr/plugin.h"

namespace rddr::scenario {

/// Stable fingerprint of a divergence record. `run_variance` must be the
/// KnownVariance the run used — HTTP region lines index the comparison
/// form, which depends on the ignore rules in force.
std::string fingerprint(const core::DivergenceRecord& r,
                        const core::KnownVariance& run_variance);

/// Deterministic JSON array of the corpus (records in bus order). Stable
/// byte-for-byte for a given corpus — the determinism check surface.
std::string corpus_json(const std::vector<core::DivergenceRecord>& corpus,
                        const core::KnownVariance& run_variance);

/// One auto-proposed denoiser rule.
struct DenoiserRule {
  std::string kind;  // "pg_param" | "http_header"
  std::string name;  // parameter / header name to ignore
};

struct MinerReport {
  /// Rules proposed from benign-window fingerprints, sorted.
  std::vector<DenoiserRule> rules;
  /// base variance + proposed rules (deduplicated).
  core::KnownVariance tuned;
  uint64_t benign_records = 0;
  uint64_t true_records = 0;
  double benign_rate() const {
    const uint64_t total = benign_records + true_records;
    return total ? static_cast<double>(benign_records) / total : 0.0;
  }
  std::string summary() const;
};

/// Classifies the corpus against the benign prefix window [0,
/// benign_until) and proposes denoiser rules. `run_variance` is the
/// variance the corpus was recorded under.
MinerReport mine_corpus(const std::vector<core::DivergenceRecord>& corpus,
                        sim::Time benign_until,
                        const core::KnownVariance& run_variance);

}  // namespace rddr::scenario
