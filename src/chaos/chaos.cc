#include "chaos/chaos.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "chaos/shrink.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/frontier.h"
#include "rddr/plugins.h"
#include "services/orchestrator.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "sqldb/storage/storage_engine.h"
#include "workloads/pgbench.h"

namespace rddr::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashRestart: return "crash-restart";
    case FaultKind::kCrashReplace: return "crash-replace";
    case FaultKind::kStall: return "stall";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLatencySpike: return "latency-spike";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kPartialWal: return "partial-wal";
    case FaultKind::kCrashCheckpoint: return "crash-checkpoint";
    case FaultKind::kCrashResync: return "crash-resync";
  }
  return "?";
}

std::string describe(const FaultSpec& fault) {
  std::string s = strformat(
      "%s @%.2fs +%.2fs on instance %zu", fault_kind_name(fault.kind),
      static_cast<double>(fault.at) / sim::kSecond,
      static_cast<double>(fault.duration) / sim::kSecond, fault.instance);
  if (fault.kind == FaultKind::kLatencySpike)
    s += strformat(" (+%.1fms)", static_cast<double>(fault.extra) / sim::kMillisecond);
  return s;
}

std::string describe(const std::vector<FaultSpec>& plan) {
  std::string s;
  for (const FaultSpec& f : plan) {
    s += describe(f);
    s += '\n';
  }
  return s;
}

std::string ChaosReport::summary() const {
  std::string s = strformat(
      "%s: %llu issued = %llu served + %llu refused + %llu lost; "
      "%llu interventions, %llu outvotes, %zu/%zu healthy at end",
      ok ? "OK" : "VIOLATION",
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(refused),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(interventions),
      static_cast<unsigned long long>(quorum_outvotes), healthy_at_end,
      n_instances);
  if (recovery_time >= 0)
    s += strformat("; recovered %.0fms after last fault",
                   static_cast<double>(recovery_time) / sim::kMillisecond);
  for (const std::string& v : violations) s += "\n  violation: " + v;
  return s;
}

std::vector<FaultSpec> generate_fault_plan(uint64_t seed,
                                           const ChaosOptions& opts) {
  Rng root(seed);
  Rng r = root.fork(0xC4A05);
  std::vector<FaultSpec> plan;
  size_t n_faults = 1 + r.next() % std::max<size_t>(opts.max_faults, 1);
  const sim::Time window =
      std::max<sim::Time>(opts.fault_window_end - opts.fault_window_start, 1);
  for (size_t k = 0; k < n_faults; ++k) {
    FaultSpec f;
    // Disk kinds join the draw only under the durable profile, so plans
    // for the in-memory deployment are unchanged seed-for-seed.
    switch (r.next() % (opts.durable_storage ? 9 : 5)) {
      case 0: f.kind = FaultKind::kCrashRestart; break;
      case 1: f.kind = FaultKind::kCrashReplace; break;
      case 2: f.kind = FaultKind::kStall; break;
      case 3: f.kind = FaultKind::kPartition; break;
      case 4: f.kind = FaultKind::kLatencySpike; break;
      case 5: f.kind = FaultKind::kTornWrite; break;
      case 6: f.kind = FaultKind::kPartialWal; break;
      case 7: f.kind = FaultKind::kCrashCheckpoint; break;
      default: f.kind = FaultKind::kCrashResync; break;
    }
    f.at = opts.fault_window_start +
           static_cast<sim::Time>(r.next() % static_cast<uint64_t>(window));
    f.duration = 200 * sim::kMillisecond +
                 static_cast<sim::Time>(r.next() % (1300ULL * sim::kMillisecond));
    f.extra = 5 * sim::kMillisecond +
              static_cast<sim::Time>(r.next() % (45ULL * sim::kMillisecond));
    f.instance = r.next() % std::max<size_t>(opts.n_instances, 1);
    plan.push_back(f);
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return plan;
}

ChaosReport run_chaos(const std::vector<FaultSpec>& plan,
                      const ChaosOptions& opts, uint64_t seed) {
  ChaosReport rep;
  rep.plan = plan;
  rep.n_instances = opts.n_instances;

  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  services::Orchestrator orch(sim, net, seed);
  orch.add_host("db-host", 8, 8LL << 30);
  orch.add_host("proxy-host", 4, 4LL << 30);

  if (opts.durable_storage) {
    sim::BlockDevice::Options vol;
    vol.faults = opts.disk_faults;
    orch.set_volume_options(vol);
  }

  // Every replica loads identical pgbench data (same data seed) but gets
  // its own rng_seed from the orchestrator (per-instance nondeterminism).
  // Under the durable profile the container also mounts its volume: a
  // restarted incarnation ignores the freshly loaded image data and
  // recovers from disk (WAL redo) instead.
  orch.register_image("minipg", [&](const services::ContainerSpec& spec) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info(spec.tag));
    workloads::load_pgbench(*db, opts.accounts, /*seed=*/9);
    sqldb::SqlServer::Options so;
    so.address = spec.address;
    so.rng_seed = spec.rng_seed;
    if (opts.durable_storage) {
      auto& vol = orch.volume(spec.container_name);
      sqldb::storage::StorageOptions sto;
      sto.wal_flush_interval = opts.wal_flush_interval;
      sto.frame_budget = opts.frame_budget;
      so.storage = std::make_shared<sqldb::storage::StorageEngine>(
          sim, vol.data, vol.wal, sto);
      // Shared across replicas: identical bootstrap data + identical
      // lineage seed is what licenses page/WAL-level resync between them.
      so.lineage_seed = seed;
    }
    return std::make_shared<sqldb::SqlServer>(net, *spec.host, db, so);
  });

  std::vector<std::string> tags(opts.n_instances, "13.0");
  std::vector<std::string> addresses =
      orch.deploy_replicas("pg", "minipg", tags, "db-host", 5432);
  // Slot -> current container/node name (updated on replacement).
  std::vector<std::string> names;
  for (const std::string& a : addresses)
    names.push_back(sim::Network::node_of(a));

  std::unique_ptr<core::NVersionDeployment> dep;

  // Peer-kill bookkeeping: which slot last served as a warm source, so
  // the kill_peer_mid_resync watcher knows whom to crash.
  auto last_warm_source = std::make_shared<size_t>(SIZE_MAX);

  core::ResyncOptions resync;
  resync.enabled = opts.resync_enabled;
  resync.catch_up_sessions = opts.resync_enabled;
  resync.min_transfer_time = opts.resync_min_transfer;
  using WarmResult = core::ResyncOptions::WarmResult;
  resync.warm = [&, last_warm_source](size_t i) -> WarmResult {
    auto target = orch.get<sqldb::SqlServer>(names[i]);
    if (!target || !dep) return {};
    const core::HealthTracker& health = dep->incoming().health();
    for (size_t j = 0; j < names.size(); ++j) {
      if (j == i || !health.is_healthy(j)) continue;
      auto source = orch.get<sqldb::SqlServer>(names[j]);
      if (!source) continue;
      *last_warm_source = j;
      // Incremental first: a delta of the WAL tail or the dirty pages,
      // when the source can build one for this target's exact LSN and
      // lineage (durable profile only).
      if (target->storage() && source->storage()) {
        sqldb::storage::StorageEngine::DeltaStats ds;
        auto delta = source->storage()->build_delta(
            target->storage()->committed_lsn(),
            target->storage()->lineage_id(), &ds);
        if (delta) {
          sqldb::storage::StorageEngine::DeltaStats applied;
          if (target->storage()->apply_delta(*delta, &applied)) {
            target->refresh_memory_charge();
            WarmResult wr;
            wr.bytes = static_cast<int64_t>(delta->size());
            wr.pages_shipped = applied.pages_shipped;
            wr.wal_records = applied.wal_records;
            wr.wal_bytes = applied.wal_bytes;
            wr.mode = applied.mode;
            return wr;
          }
          // A failed apply cleared the target; fall through to the full
          // snapshot, which rebases it onto the source's state.
        }
      }
      std::string snap = source->dump_snapshot();
      uint64_t src_lsn = 0, src_lineage = 0;
      if (source->storage()) {
        src_lsn = source->storage()->committed_lsn();
        src_lineage = source->storage()->lineage_id();
      }
      if (!target->load_snapshot(snap, nullptr, src_lsn, src_lineage))
        return {};
      WarmResult wr;
      wr.bytes = static_cast<int64_t>(snap.size());
      return wr;
    }
    return {};  // no trusted peer right now; quarantine retries later
  };

  auto do_replace = [&](size_t slot) {
    if (!dep) return;
    std::string new_address;
    try {
      new_address = orch.replace(names[slot]);
    } catch (const std::exception&) {
      return;  // container already gone
    }
    names[slot] = sim::Network::node_of(new_address);
    dep->replace_instance(slot, new_address);
  };

  core::HealthTracker::Options health;
  health.failure_threshold = 1;
  health.reconnect_base_delay = 50 * sim::kMillisecond;
  health.reconnect_max_delay = 1 * sim::kSecond;
  health.reconnect_max_attempts = 0;  // probe forever; faults always heal
  health.reconnect_jitter = 0.2;
  health.seed = seed ^ 0x9e170000ULL;

  dep = core::NVersionDeployment::Builder()
            .name("chaos")
            .listen("front:5432")
            .versions(addresses)
            .plugin(std::make_shared<core::PgPlugin>())
            .filter_pair(true)
            .degradation(core::DegradationPolicy::kQuorum)
            .health(health)
            .unit_timeout(250 * sim::kMillisecond)
            .resync(resync)
            .on_instance_dead(
                [&](size_t slot, const std::string&) { do_replace(slot); })
            .build(net, orch.host("proxy-host"));

  // ---- fault schedule ----
  sim::Time last_fault_end = 0;

  // Peer-kill-mid-resync watcher: the first time any instance is observed
  // in kResyncing, crash the peer that just served as its warm source
  // (restarted 300ms later). The transfer window is still modeled, the
  // journal replay targets the resyncing instance, and quarantine retries
  // cover a warm that never happened — the invariants below then prove
  // the deployment never readmits partial state.
  if (opts.kill_peer_mid_resync) {
    auto killed = std::make_shared<bool>(false);
    auto pk_watch = std::make_shared<std::function<void()>>();
    *pk_watch = [&, pk_watch, killed, last_warm_source] {
      if (*killed) return;
      const core::HealthTracker& h = dep->incoming().health();
      for (size_t i = 0; i < names.size(); ++i) {
        if (h.state(i) != core::HealthTracker::State::kResyncing) continue;
        size_t victim = *last_warm_source;
        if (victim == SIZE_MAX || victim == i) continue;
        *killed = true;
        std::string victim_name = names[victim];
        try { orch.crash(victim_name); } catch (const std::exception&) {}
        last_fault_end =
            std::max(last_fault_end, sim.now() + 300 * sim::kMillisecond);
        sim.schedule(300 * sim::kMillisecond, [&, victim_name] {
          try { orch.restart(victim_name); } catch (const std::exception&) {}
        });
        return;
      }
      sim.schedule(10 * sim::kMillisecond, [pk_watch] { (*pk_watch)(); });
    };
    sim.schedule_at(sim::kMillisecond, [pk_watch] { (*pk_watch)(); });
  }

  for (const FaultSpec& f : plan) {
    const size_t slot = f.instance % opts.n_instances;
    last_fault_end = std::max(last_fault_end, f.at + f.duration);
    switch (f.kind) {
      case FaultKind::kCrashRestart:
        sim.schedule_at(f.at, [&, slot] {
          try { orch.crash(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try { orch.restart(names[slot]); } catch (const std::exception&) {}
        });
        break;
      case FaultKind::kCrashReplace:
        sim.schedule_at(f.at, [&, slot] {
          try { orch.crash(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try {
            if (orch.crashed(names[slot])) do_replace(slot);
          } catch (const std::exception&) {}
        });
        break;
      case FaultKind::kStall:
        sim.schedule_at(f.at, [&, slot, end = f.at + f.duration] {
          net.stall_node_egress_until(names[slot], end);
        });
        break;
      case FaultKind::kPartition:
        sim.schedule_at(f.at, [&, slot] { net.partition({names[slot]}); });
        sim.schedule_at(f.at + f.duration, [&] { net.heal_partition(); });
        break;
      case FaultKind::kLatencySpike:
        sim.schedule_at(f.at, [&, slot, extra = f.extra] {
          net.set_node_extra_latency(names[slot], extra);
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          net.set_node_extra_latency(names[slot], 0);
        });
        break;
      case FaultKind::kTornWrite:
        // Force the device to tear the newest staged WAL block on crash:
        // recovery must stop redo at the torn record (valid prefix only)
        // and resync must make up the difference.
        sim.schedule_at(f.at, [&, slot] {
          try {
            auto s = orch.get<sqldb::SqlServer>(names[slot]);
            if (s && s->storage())
              s->storage()->wal_device().force_torn_on_next_crash();
            orch.crash(names[slot]);
          } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try { orch.restart(names[slot]); } catch (const std::exception&) {}
        });
        break;
      case FaultKind::kPartialWal:
        // Under group commit (wal_flush_interval > 0) a write-heavy
        // instant always has staged, unsynced WAL records — the crash
        // subjects them to the device fault model (lost/torn tail).
        sim.schedule_at(f.at, [&, slot] {
          try { orch.crash(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try { orch.restart(names[slot]); } catch (const std::exception&) {}
        });
        break;
      case FaultKind::kCrashCheckpoint:
        // Kick a checkpoint, then crash 3ms later — inside the paced
        // write-out (steps are checkpoint_step_interval apart), so the
        // staged pages and the not-yet-written root race the crash.
        sim.schedule_at(f.at, [&, slot] {
          try {
            auto s = orch.get<sqldb::SqlServer>(names[slot]);
            if (s && s->storage()) s->storage()->force_checkpoint();
          } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + 3 * sim::kMillisecond, [&, slot] {
          try { orch.crash(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try { orch.restart(names[slot]); } catch (const std::exception&) {}
        });
        break;
      case FaultKind::kCrashResync: {
        // Staggered double crash: the restarted instance resyncs while
        // its likeliest warm source goes down too.
        const size_t slot2 = (slot + 1) % opts.n_instances;
        const sim::Time second_at =
            f.at + f.duration + 80 * sim::kMillisecond;
        const sim::Time second_dur =
            std::max<sim::Time>(f.duration / 2, 200 * sim::kMillisecond);
        last_fault_end = std::max(last_fault_end, second_at + second_dur);
        sim.schedule_at(f.at, [&, slot] {
          try { orch.crash(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(f.at + f.duration, [&, slot] {
          try { orch.restart(names[slot]); } catch (const std::exception&) {}
        });
        sim.schedule_at(second_at, [&, slot2] {
          try { orch.crash(names[slot2]); } catch (const std::exception&) {}
        });
        sim.schedule_at(second_at + second_dur, [&, slot2] {
          try { orch.restart(names[slot2]); } catch (const std::exception&) {}
        });
        break;
      }
    }
  }

  // ---- workload: per-client query loops with periodic reconnects ----
  struct Client {
    std::unique_ptr<sqldb::PgClient> pg;
    size_t issued = 0;
    Rng rng{0};
  };
  auto clients = std::make_shared<std::vector<Client>>(opts.clients);
  {
    Rng root(seed);
    for (size_t c = 0; c < opts.clients; ++c)
      (*clients)[c].rng = root.fork(100 + c);
  }
  auto step = std::make_shared<std::function<void(size_t)>>();
  *step = [&, clients, step](size_t c) {
    Client& cl = (*clients)[c];
    if (cl.issued >= opts.queries_per_client) {
      if (cl.pg) cl.pg->close();
      return;
    }
    const bool fresh_session =
        !cl.pg || cl.pg->broken() ||
        (opts.queries_per_session > 0 &&
         cl.issued % opts.queries_per_session == 0);
    if (fresh_session) {
      if (cl.pg) cl.pg->close();
      cl.pg = std::make_unique<sqldb::PgClient>(
          net, strformat("client-%zu", c), "front:5432", "postgres");
    }
    const size_t qi = cl.issued++;
    std::string sql;
    if (opts.update_every > 0 && qi % opts.update_every == 0) {
      int aid = 1 + static_cast<int>(cl.rng.next() %
                                     static_cast<uint64_t>(opts.accounts));
      int delta = 1 + static_cast<int>(cl.rng.next() % 100);
      sql = strformat(
          "UPDATE pgbench_accounts SET abalance = abalance + %d WHERE aid = %d",
          delta, aid);
    } else {
      sql = workloads::pgbench_select_tx(cl.rng, opts.accounts);
    }
    ++rep.issued;
    cl.pg->query(sql, [&rep](sqldb::QueryOutcome o) {
      if (o.failed()) ++rep.refused;
      else ++rep.served;
    });
    sim.schedule(opts.client_spacing, [step, c] { (*step)(c); });
  };
  for (size_t c = 0; c < opts.clients; ++c) {
    sim.schedule_at(10 * sim::kMillisecond +
                        static_cast<sim::Time>(c) * sim::kMillisecond,
                    [step, c] { (*step)(c); });
  }

  // ---- recovery watcher: first moment back at full N after last fault ----
  auto watch = std::make_shared<std::function<void()>>();
  *watch = [&, watch] {
    if (dep->incoming().health().healthy_count() == opts.n_instances) {
      if (rep.recovery_time < 0) rep.recovery_time = sim.now() - last_fault_end;
      return;
    }
    sim.schedule(50 * sim::kMillisecond, [watch] { (*watch)(); });
  };
  sim.schedule_at(last_fault_end, [watch] { (*watch)(); });

  const sim::Time workload_span =
      static_cast<sim::Time>(opts.queries_per_client) * opts.client_spacing +
      sim::kSecond;
  sim.run_until(std::max(last_fault_end, workload_span) + opts.settle);

  // ---- invariants ----
  rep.stats = dep->incoming().stats();
  rep.interventions = rep.stats.divergences;
  rep.quorum_outvotes = rep.stats.quorum_outvotes;
  rep.healthy_at_end = dep->incoming().health().healthy_count();
  rep.lost = rep.issued - rep.served - rep.refused;
  if (rep.interventions > 0)
    rep.violations.push_back(strformat(
        "benign schedule triggered %llu intervention(s)",
        static_cast<unsigned long long>(rep.interventions)));
  if (rep.quorum_outvotes > 0)
    rep.violations.push_back(strformat(
        "%llu quorum outvote(s): a replica served stale or divergent state",
        static_cast<unsigned long long>(rep.quorum_outvotes)));
  if (rep.lost > 0)
    rep.violations.push_back(strformat(
        "%llu client quer%s vanished without an answer or a refusal",
        static_cast<unsigned long long>(rep.lost), rep.lost == 1 ? "y" : "ies"));
  if (rep.healthy_at_end < opts.n_instances)
    rep.violations.push_back(strformat(
        "deployment ended at %zu/%zu healthy instances", rep.healthy_at_end,
        opts.n_instances));
  rep.ok = rep.violations.empty();
  return rep;
}

ChaosReport run_chaos_seed(uint64_t seed, const ChaosOptions& opts) {
  return run_chaos(generate_fault_plan(seed, opts), opts, seed);
}

ChaosReport run_peer_kill_resync(uint64_t seed, ChaosOptions opts) {
  opts.durable_storage = true;
  opts.kill_peer_mid_resync = true;
  // A wide transfer window so the watcher reliably catches the resync
  // in flight, and enough settle for the double recovery.
  opts.resync_min_transfer = 150 * sim::kMillisecond;
  opts.settle = std::max<sim::Time>(opts.settle, 25 * sim::kSecond);
  FaultSpec f;
  f.kind = FaultKind::kCrashRestart;
  f.at = 1 * sim::kSecond;
  f.duration = 400 * sim::kMillisecond;
  f.instance = 0;
  return run_chaos({f}, opts, seed);
}

ShrinkResult shrink_fault_plan(const std::vector<FaultSpec>& failing_plan,
                               const ChaosOptions& opts, uint64_t seed) {
  ShrinkResult res;
  auto still_fails = [&](const std::vector<FaultSpec>& candidate) {
    ++res.runs;
    return !run_chaos(candidate, opts, seed).ok;
  };
  // Pass 1: drop whole faults while the plan still fails (shared greedy
  // delta-debugging core, chaos/shrink.h).
  std::vector<FaultSpec> cur = shrink_drop_pass(failing_plan, still_fails);
  // Pass 2: halve surviving durations while failure persists.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < cur.size(); ++i) {
      if (cur[i].duration < 100 * sim::kMillisecond) continue;
      std::vector<FaultSpec> candidate = cur;
      candidate[i].duration /= 2;
      if (still_fails(candidate)) {
        cur = std::move(candidate);
        progress = true;
      }
    }
  }
  res.report = run_chaos(cur, opts, seed);
  ++res.runs;
  res.plan = std::move(cur);
  return res;
}

// ---- shard kill ----

std::string ShardKillReport::summary() const {
  std::string s = strformat(
      "%s: %llu issued = %llu served + %llu refused + %llu lost; "
      "%llu refused during outage, %llu sessions after readmit, "
      "killed shard %zu healthy at end",
      ok ? "OK" : "VIOLATION", static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(refused),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(refused_during_outage),
      static_cast<unsigned long long>(sessions_after_readmit),
      killed_shard_healthy_at_end);
  if (readmit_time >= 0)
    s += strformat("; readmitted %.0fms after restart",
                   static_cast<double>(readmit_time) / sim::kMillisecond);
  for (const std::string& v : violations) s += "\n  violation: " + v;
  return s;
}

ShardKillReport run_shard_kill(const ShardKillOptions& opts, uint64_t seed) {
  ShardKillReport rep;
  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  sim::Host db_host(sim, "db-host", 16, 32LL << 30);
  sim::Host proxy_host(sim, "proxy-host", 8, 8LL << 30);

  // Per-shard pools: shard k fronts instances "pg-s<k>-<i>:5432", all
  // loaded with identical pgbench data but per-instance rng seeds.
  std::vector<std::vector<std::string>> pools(opts.shards);
  std::vector<std::shared_ptr<sqldb::SqlServer>> servers;
  for (size_t k = 0; k < opts.shards; ++k) {
    for (size_t i = 0; i < opts.instances_per_shard; ++i) {
      std::string address = strformat("pg-s%zu-%zu:5432", k, i);
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, opts.accounts, /*seed=*/9);
      sqldb::SqlServer::Options so;
      so.address = address;
      so.rng_seed = seed ^ (k * 100 + i + 1);
      servers.push_back(
          std::make_shared<sqldb::SqlServer>(net, db_host, db, so));
      pools[k].push_back(std::move(address));
    }
  }

  core::HealthTracker::Options health;
  health.failure_threshold = 1;
  health.reconnect_base_delay = 50 * sim::kMillisecond;
  health.reconnect_max_delay = 1 * sim::kSecond;
  health.reconnect_max_attempts = 0;  // probe forever; the pool comes back
  health.reconnect_jitter = 0.2;
  health.seed = seed ^ 0x9e170000ULL;

  auto front = core::NVersionDeployment::Builder()
                   .name("skill")
                   .listen("front:5432")
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .degradation(core::DegradationPolicy::kQuorum)
                   .health(health)
                   .unit_timeout(250 * sim::kMillisecond)
                   .shard_versions(pools)
                   .islands(opts.islands)
                   .build_frontier(net, proxy_host);
  // One proxy host => every shard shares one island; the shared db host
  // carries all the pools' SqlServers, so its completion events must run
  // on that island too (cpu tasks and connection events interleave).
  if (opts.islands > 0) db_host.pin_island(front->shard_island(0));

  const size_t kill = opts.kill_shard % opts.shards;
  // Global events: fault-state mutations run at a barrier with every
  // island parked (equivalent to plain schedule_at in legacy mode).
  sim.schedule_global_at(opts.kill_at, [&] {
    for (const std::string& a : pools[kill])
      net.crash_node(sim::Network::node_of(a));
  });
  sim.schedule_global_at(opts.restart_at, [&] {
    for (const std::string& a : pools[kill])
      net.restart_node(sim::Network::node_of(a));
  });

  // Readmit watcher: first moment the killed shard's pool is back at full
  // health after the restart.
  // The watcher samples the killed shard's live health, so it must run
  // on that shard's island: a cross-island read would see a snapshot that
  // depends on how far the owner island has run inside the current
  // window (tear-free, but not deterministic).
  const IslandId kill_island = front->shard_island(kill);
  auto watch = std::make_shared<std::function<void()>>();
  *watch = [&, watch] {
    if (front->shard(kill).incoming().health().healthy_count() ==
        opts.instances_per_shard) {
      if (rep.readmit_time < 0) rep.readmit_time = sim.now() - opts.restart_at;
      return;
    }
    sim.schedule(25 * sim::kMillisecond, [watch] { (*watch)(); });
  };
  sim.schedule_on(kill_island, opts.restart_at, [watch] { (*watch)(); });
  uint64_t killed_sessions_at_restart = 0;
  sim.schedule_on(kill_island, opts.restart_at, [&] {
    killed_sessions_at_restart = front->shard(kill).incoming().stats().sessions;
  });

  // Detection grace: refusals of sessions opened this soon after the kill
  // are the expected sacrificial probe that flips the pool unhealthy.
  const sim::Time detect_grace = 100 * sim::kMillisecond;
  uint64_t refused_after_detection = 0;

  struct Client {
    std::unique_ptr<sqldb::PgClient> pg;
  };
  auto clients = std::make_shared<std::vector<Client>>(opts.sessions);
  Rng root(seed);
  for (size_t s = 0; s < opts.sessions; ++s) {
    sim::Time open_at = 10 * sim::kMillisecond +
                        static_cast<sim::Time>(s) * opts.session_spacing;
    sim.schedule_at(open_at, [&, s, open_at] {
      Client& cl = (*clients)[s];
      cl.pg = std::make_unique<sqldb::PgClient>(
          net, strformat("skc-%zu", s), "front:5432", "postgres");
      Rng rng = root.fork(1000 + s);
      for (size_t q = 0; q < opts.queries_per_session; ++q) {
        std::string sql = workloads::pgbench_select_tx(rng, opts.accounts);
        ++rep.issued;
        cl.pg->query(sql, [&, s, open_at, q](sqldb::QueryOutcome o) {
          if (o.failed()) {
            ++rep.refused;
            if (open_at >= opts.kill_at && open_at < opts.restart_at) {
              ++rep.refused_during_outage;
              if (open_at >= opts.kill_at + detect_grace)
                ++refused_after_detection;
            }
          } else {
            ++rep.served;
          }
          if (q + 1 == opts.queries_per_session && cl.pg) cl.pg->close();
        });
      }
    });
  }

  const sim::Time workload_end =
      10 * sim::kMillisecond +
      static_cast<sim::Time>(opts.sessions) * opts.session_spacing;
  sim.run_until(std::max(workload_end, opts.restart_at) + opts.settle);

  rep.lost = rep.issued - rep.served - rep.refused;
  rep.killed_shard_healthy_at_end =
      front->shard(kill).incoming().health().healthy_count();
  rep.sessions_after_readmit =
      front->shard(kill).incoming().stats().sessions -
      killed_sessions_at_restart;

  if (rep.lost > 0)
    rep.violations.push_back(strformat(
        "%llu quer%s vanished without an answer or a refusal",
        static_cast<unsigned long long>(rep.lost), rep.lost == 1 ? "y" : "ies"));
  if (refused_after_detection > 0)
    rep.violations.push_back(strformat(
        "%llu refusal(s) of sessions opened after the detection window: "
        "the router kept sending sessions to the dead shard",
        static_cast<unsigned long long>(refused_after_detection)));
  if (rep.readmit_time < 0)
    rep.violations.push_back("killed shard never returned to full health");
  if (rep.killed_shard_healthy_at_end < opts.instances_per_shard)
    rep.violations.push_back(strformat(
        "killed shard ended at %zu/%zu healthy instances",
        rep.killed_shard_healthy_at_end, opts.instances_per_shard));
  if (rep.sessions_after_readmit == 0)
    rep.violations.push_back(
        "killed shard served no sessions after readmission");
  rep.ok = rep.violations.empty();
  return rep;
}

}  // namespace rddr::chaos
