// Seeded chaos harness for self-healing N-version deployments.
//
// From one integer seed, generate_fault_plan() derives a random schedule
// of benign faults (crashes with restart or replacement, egress stalls,
// partitions, latency spikes) and run_chaos() executes it against a live
// pgbench-style read/write workload on a 3-version sqldb deployment with
// resync + replacement enabled, then checks the recovery invariants:
//
//   1. benign traffic never triggers an intervention (no divergences, no
//      bus aborts, and no quorum outvote of a merely-slow instance);
//   2. every client query is accounted for — answered or refused with a
//      visible connection loss, never silently dropped;
//   3. the deployment returns to full-N health after the last fault.
//
// Everything runs on the deterministic simulator: a failing seed fails
// byte-identically every time, and shrink_fault_plan() greedily minimises
// a failing schedule to a smallest still-failing repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/block_device.h"
#include "netsim/simulator.h"
#include "rddr/options.h"

namespace rddr::chaos {

enum class FaultKind {
  kCrashRestart,  // container crash, restarted after `duration`
  kCrashReplace,  // container crash, replaced (fresh name/seed) after it
  kStall,         // egress frozen for `duration` (alive but silent)
  kPartition,     // node isolated from the network for `duration`
  kLatencySpike,  // +`extra` per-direction latency for `duration`
  // Disk faults (generated only with ChaosOptions::durable_storage):
  kTornWrite,        // crash tearing the last staged WAL block, restart
  kPartialWal,       // crash inside the group-commit window, restart
  kCrashCheckpoint,  // force a checkpoint, crash mid-write-out, restart
  kCrashResync,      // crash, restart, then crash a peer mid-resync
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kCrashRestart;
  sim::Time at = 0;        // absolute virtual time
  sim::Time duration = 0;  // downtime / stall / partition / spike length
  sim::Time extra = 0;     // added latency (kLatencySpike only)
  size_t instance = 0;     // deployment slot [0, N)
};

/// One line per fault, e.g. "crash-restart @1.20s +0.50s on instance 2".
std::string describe(const FaultSpec& fault);
std::string describe(const std::vector<FaultSpec>& plan);

struct ChaosOptions {
  size_t n_instances = 3;
  int accounts = 20;  // small table => updates collide with later reads
  size_t clients = 3;
  size_t queries_per_client = 60;
  /// Queries with index % 3 == 0 are UPDATEs (state the replicas must not
  /// lose across resync), the rest pgbench SELECTs.
  size_t update_every = 3;
  /// A client opens a fresh connection every this many queries, so
  /// readmitted instances actually join compared sessions.
  size_t queries_per_session = 5;
  sim::Time client_spacing = 100 * sim::kMillisecond;
  size_t max_faults = 3;
  /// Faults are drawn from [fault_window_start, fault_window_end).
  sim::Time fault_window_start = 500 * sim::kMillisecond;
  sim::Time fault_window_end = 8 * sim::kSecond;
  /// Extra drain time after the last fault for probes + resync to finish.
  sim::Time settle = 20 * sim::kSecond;
  /// Ablation switch: with resync off, a restarted replica rejoins with
  /// stale state and the invariants catch it (the harness's self-test).
  bool resync_enabled = true;
  /// Durable-storage profile: every replica runs over an orchestrator
  /// volume (sqldb/storage), restarts recover from disk (WAL redo), and
  /// resync warms incrementally (WAL tail / dirty pages) with a
  /// full-snapshot fallback. Enables the disk FaultKinds in generated
  /// plans.
  bool durable_storage = false;
  /// Seeded device fault probabilities applied to every volume (only
  /// meaningful with durable_storage).
  sim::DiskFaults disk_faults;
  /// Group-commit interval for the durable profile (0 = sync every
  /// commit; the default keeps a WAL tail staged so crash windows exist).
  sim::Time wal_flush_interval = 5 * sim::kMillisecond;
  /// Buffer-pool frame budget per replica (durable profile).
  uint64_t frame_budget = 128;
  /// Floor of the modeled resync transfer window (wide windows make the
  /// peer-kill scenario deterministic).
  sim::Time resync_min_transfer = sim::kMillisecond;
  /// Peer-kill scenario switch: the first time an instance enters resync,
  /// crash the peer that served as its warm source mid-window (restarted
  /// shortly after). The invariants then check the resyncing replica
  /// completes from another healthy peer or stays quarantined — never
  /// readmitted with partial state.
  bool kill_peer_mid_resync = false;
};

struct ChaosReport {
  std::vector<FaultSpec> plan;
  bool ok = true;
  std::vector<std::string> violations;

  // Per-query session accounting.
  uint64_t issued = 0;
  uint64_t served = 0;
  uint64_t refused = 0;  // visible connection loss / proxy refusal
  uint64_t lost = 0;     // issued but never answered nor refused

  uint64_t interventions = 0;     // divergence aborts (must be 0)
  uint64_t quorum_outvotes = 0;   // must be 0: benign faults never diverge
  size_t healthy_at_end = 0;
  size_t n_instances = 0;
  /// Last fault end -> first moment the deployment was back at full N
  /// (-1 when it never recovered).
  sim::Time recovery_time = -1;
  core::ProxyStats stats;  // incoming-proxy counters at the end

  std::string summary() const;
};

/// Deterministic random schedule for `seed` (same seed, same plan).
std::vector<FaultSpec> generate_fault_plan(uint64_t seed,
                                           const ChaosOptions& opts);

/// Builds a fresh simulated deployment (N sqldb replicas behind an
/// incoming proxy under kQuorum, orchestrator-managed, resync +
/// replacement wired) and executes `plan` against the workload. All
/// randomness derives from `seed`.
ChaosReport run_chaos(const std::vector<FaultSpec>& plan,
                      const ChaosOptions& opts, uint64_t seed);

/// generate_fault_plan + run_chaos in one call.
ChaosReport run_chaos_seed(uint64_t seed, const ChaosOptions& opts);

/// Satellite scenario: durable 3-replica deployment, crash+restart one
/// replica, then kill the trusted peer serving its resync mid-transfer.
/// Passes when the resyncing replica completes from another healthy peer
/// (or retries after quarantine) and the usual chaos invariants hold.
ChaosReport run_peer_kill_resync(uint64_t seed, ChaosOptions opts = {});

struct ShrinkResult {
  std::vector<FaultSpec> plan;  // minimal still-failing schedule
  ChaosReport report;           // its report (report.ok == false)
  size_t runs = 0;              // executions spent shrinking
};

/// Greedy delta-debugging: repeatedly drop single faults while the plan
/// still fails, then halve surviving durations where failure persists.
/// Deterministic: the same failing plan shrinks to the same repro.
ShrinkResult shrink_fault_plan(const std::vector<FaultSpec>& failing_plan,
                               const ChaosOptions& opts, uint64_t seed);

// ---- front-tier shard-kill scenario (rddr/frontier.h) ----

struct ShardKillOptions {
  size_t shards = 3;
  size_t instances_per_shard = 3;
  int accounts = 20;
  /// Client sessions opened over the run, one every `session_spacing`,
  /// each issuing `queries_per_session` queries on a fresh connection
  /// with a distinct source (so consistent hashing spreads them).
  size_t sessions = 150;
  size_t queries_per_session = 2;
  sim::Time session_spacing = 20 * sim::kMillisecond;
  /// Which shard's whole pool is crashed, and when / for how long.
  size_t kill_shard = 1;
  sim::Time kill_at = 600 * sim::kMillisecond;
  sim::Time restart_at = 1500 * sim::kMillisecond;
  /// Extra drain time after the last session for probes to readmit.
  sim::Time settle = 15 * sim::kSecond;
  /// Partition the simulation into this many islands (0 = legacy single
  /// loop; 1 = sequential oracle for the parallel modes — see
  /// NVersionDeployment::Builder::islands). The report must be identical
  /// for every value of this knob.
  size_t islands = 0;
};

struct ShardKillReport {
  bool ok = true;
  std::vector<std::string> violations;
  uint64_t issued = 0;   // queries sent
  uint64_t served = 0;
  uint64_t refused = 0;  // failed or connection lost
  uint64_t lost = 0;     // never answered nor refused
  /// Refusals of sessions opened while the shard was down. Expected: a
  /// brief detection burst right after the kill, then zero — the router
  /// re-routes around the dead shard.
  uint64_t refused_during_outage = 0;
  /// Sessions the killed shard served after the pool restarted (proves
  /// readmission returned it to the rotation).
  uint64_t sessions_after_readmit = 0;
  size_t killed_shard_healthy_at_end = 0;
  /// restart -> the killed shard's pool back at full health (-1 = never).
  sim::Time readmit_time = -1;

  std::string summary() const;
};

/// Deploys an S-shard Frontier (per-shard minipg pools, kQuorum health),
/// crashes one shard's entire pool mid-workload, restarts it, and checks:
/// (1) no query is silently lost; (2) after a bounded detection window the
/// router sheds nothing and re-routes every new session to live shards;
/// (3) the restarted pool is probed, readmitted, and serves sessions
/// again. Fully deterministic per seed.
ShardKillReport run_shard_kill(const ShardKillOptions& opts, uint64_t seed);

}  // namespace rddr::chaos
