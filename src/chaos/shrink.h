// Greedy delta-debugging drop pass, shared by the chaos harness
// (shrink_fault_plan, over FaultSpec schedules) and the scenario-factory
// fuzzer (scenario::Fuzzer, over adversarial op lists).
//
// Repeatedly removes single elements while the caller's predicate says
// the shrunk candidate still fails, restarting the scan after every
// successful removal. The result is 1-minimal: removing any one element
// of it makes the failure disappear. Deterministic by construction —
// the scan order is fixed, so the same failing input always shrinks to
// the same repro (each harness's own execution must be seeded).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rddr::chaos {

/// `still_fails(candidate)` must re-execute the scenario with the
/// candidate op list and return true when the original failure is still
/// observed. It is called O(n^2) times in the worst case; keep per-run
/// state fresh (build a new simulator per call).
template <typename Op, typename StillFails>
std::vector<Op> shrink_drop_pass(std::vector<Op> cur,
                                 StillFails&& still_fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < cur.size(); ++i) {
      std::vector<Op> candidate = cur;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        cur = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return cur;
}

}  // namespace rddr::chaos
