// Bump-pointer arena backing the batched diff-and-denoise data plane.
//
// One arena lives behind each DiffEngine (one engine per proxy): every
// canonical form, line table and noise mask for a batch is carved out of
// it, and `reset()` at the start of the next batch reclaims everything in
// O(1) while retaining capacity — so after warm-up, steady-state request
// handling performs no heap allocation in the diff plane at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/bytes.h"

namespace rddr::core {

class Arena {
 public:
  explicit Arena(size_t reserve = 0) {
    if (reserve > 0) add_chunk(reserve);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialised storage; alignment must be a power of two.
  void* alloc(size_t n, size_t align = alignof(std::max_align_t)) {
    char* p = align_up(cur_, align);
    if (p == nullptr || p + n > end_) return refill(n, align);
    cur_ = p + n;
    return p;
  }

  template <typename T>
  T* alloc_array(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
  }

  /// Copies `b` into the arena and returns a view of the copy.
  ByteView copy(ByteView b) {
    if (b.empty()) return ByteView();
    char* p = static_cast<char*>(alloc(b.size(), 1));
    std::memcpy(p, b.data(), b.size());
    return ByteView(p, b.size());
  }

  /// Reclaims every allocation while keeping capacity. If the last cycle
  /// spilled into more than one chunk, they are coalesced into a single
  /// chunk so the steady state is one chunk and zero refills.
  void reset() {
    ++resets_;
    if (!chunks_.empty()) {
      size_t used =
          cycle_used_ + static_cast<size_t>(cur_ - chunks_.back().mem.get());
      if (used > high_water_) high_water_ = used;
    }
    if (chunks_.size() > 1) {
      size_t total = 0;
      for (const auto& c : chunks_) total += c.size;
      chunks_.clear();
      add_chunk(total);
    } else if (!chunks_.empty()) {
      cur_ = chunks_[0].mem.get();
      end_ = cur_ + chunks_[0].size;
    }
    cycle_used_ = 0;
  }

  struct Stats {
    size_t capacity = 0;    // bytes reserved across chunks
    size_t high_water = 0;  // max bytes live in any one cycle
    uint64_t resets = 0;
    uint64_t refills = 0;  // chunk allocations past the initial reserve
  };

  Stats stats() const {
    Stats s;
    for (const auto& c : chunks_) s.capacity += c.size;
    s.high_water = high_water_;
    s.resets = resets_;
    s.refills = refills_;
    return s;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> mem;
    size_t size = 0;
  };

  static char* align_up(char* p, size_t align) {
    auto v = reinterpret_cast<uintptr_t>(p);
    v = (v + align - 1) & ~(uintptr_t(align) - 1);
    return reinterpret_cast<char*>(v);
  }

  void add_chunk(size_t size) {
    Chunk c;
    c.size = size;
    c.mem = std::make_unique<char[]>(size);
    cur_ = c.mem.get();
    end_ = cur_ + size;
    chunks_.push_back(std::move(c));
  }

  void* refill(size_t n, size_t align);

  std::vector<Chunk> chunks_;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  size_t cycle_used_ = 0;  // bytes consumed in exhausted chunks this cycle
  size_t high_water_ = 0;
  uint64_t resets_ = 0;
  uint64_t refills_ = 0;
};

inline void* Arena::refill(size_t n, size_t align) {
  if (!chunks_.empty())
    cycle_used_ += static_cast<size_t>(end_ - chunks_.back().mem.get());
  size_t grown = chunks_.empty() ? 4096 : chunks_.back().size * 2;
  while (grown < n + align + cycle_used_) grown *= 2;
  ++refills_;
  add_chunk(grown);
  char* p = align_up(cur_, align);
  cur_ = p + n;
  return p;
}

/// Minimal growable array over an Arena. Trivially copyable (the storage
/// belongs to the arena), so it can itself live inside arena-allocated
/// structs; growth copies into a fresh arena block and abandons the old
/// one (reclaimed wholesale at the next reset()).
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec grows by memcpy relocation");

 public:
  void push_back(Arena& arena, const T& v) {
    if (size_ == cap_) grow(arena);
    data_[size_++] = v;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  T* data() { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void grow(Arena& arena) {
    uint32_t next = cap_ == 0 ? 8 : cap_ * 2;
    T* moved = arena.alloc_array<T>(next);
    if (size_ > 0) std::memcpy(moved, data_, size_ * sizeof(T));
    data_ = moved;
    cap_ = next;
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
};

}  // namespace rddr::core
