#include "rddr/incoming_proxy.h"

#include <algorithm>
#include <deque>

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::core {

struct IncomingProxy::Session {
  uint64_t id = 0;
  sim::ConnPtr client;
  std::unique_ptr<StreamFramer> client_framer;
  bool client_passthrough = false;

  // All vectors are indexed by instance id [0, N); a slot of a dropped or
  // skipped instance holds a null upstream and participating=false.
  std::vector<sim::ConnPtr> upstreams;
  std::vector<std::unique_ptr<StreamFramer>> upstream_framers;
  std::vector<std::deque<Unit>> queues;
  std::vector<bool> upstream_closed;
  std::vector<bool> participating;
  // Catch-up connections to readmitted instances that are not part of this
  // session (lazily dialled; responses are discarded, never compared).
  std::vector<sim::ConnPtr> shadows;

  bool busy = false;          // a compare task is on the host
  bool ended = false;
  bool degraded = false;      // counted into degraded_sessions once
  bool failopen = false;      // uncompared passthrough on the sole survivor
  size_t failopen_idx = 0;
  uint64_t timeout_event = 0; // pending instance-timeout event id
  uint64_t idle_event = 0;    // pending idle-shed event id
  // Last protocol progress: a completed client unit or a forwarded
  // response. Deliberately NOT raw byte activity — a slowloris sender
  // trickling bytes never completes a unit and must still be shed.
  sim::Time last_progress = 0;
  // Fingerprint of the most recent client unit (divergence attribution
  // for the signature store). Pipelined requests make this approximate,
  // which mirrors real signature generators.
  uint64_t last_unit_fingerprint = 0;
  bool has_fingerprint = false;

  // Trace context (zero when no tracer is configured).
  obs::TraceId trace = 0;
  obs::SpanId root_span = 0;
  std::vector<obs::SpanId> upstream_spans;

  // Execution index of this session's flow: the inbound connection's index
  // verbatim for nested hops (the caller's dial frame is the call site), or
  // a fresh root frame (listen site, session id) for originating edge
  // requests. Replicated upstream dials carry it unchanged.
  ExecutionIndex index;

  size_t live() const {
    size_t n = 0;
    for (bool p : participating)
      if (p) ++n;
    return n;
  }
};

IncomingProxy::IncomingProxy(sim::Network& net, sim::Host& host,
                             Config config, DivergenceBus* bus)
    : net_(net),
      host_(host),
      config_(std::move(config)),
      bus_(bus),
      health_([this] {
        HealthTracker::Options h = config_.health;
        h.n_instances = config_.instance_addresses.size();
        return h;
      }()),
      engine_(config_.diff) {
  if (!bus_) {
    // Bus-less construction keeps the one-sink invariant: the proxy owns a
    // private bus, so every divergence still flows through AttributionSink.
    own_bus_ = std::make_unique<DivergenceBus>(net.simulator());
    bus_ = own_bus_.get();
  }
  if (config_.metrics) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  counters_.bind(*metrics_, config_.name);
  token_state_.n_instances = config_.instance_addresses.size();
  token_state_.delete_tokens_after_use = config_.delete_tokens_after_use;
  probe_events_.assign(config_.instance_addresses.size(), 0);
  dead_events_.assign(config_.instance_addresses.size(), 0);
  resync_.resize(config_.instance_addresses.size());
  host_.charge_memory(config_.base_memory_bytes);
  if (!config_.listen_address.empty())
    net_.listen(config_.listen_address,
                [this](sim::ConnPtr c) { on_accept(std::move(c)); });
  if (bus_) {
    bus_->subscribe([this](const DivergenceEvent& ev) {
      // A sibling proxy (the outgoing one) saw divergence: the client
      // session must not receive whatever the instances produce next.
      if (ev.proxy != config_.name)
        abort_all_sessions("sibling proxy reported: " + ev.reason);
    });
  }
}

IncomingProxy::~IncomingProxy() {
  if (!config_.listen_address.empty()) net_.unlisten(config_.listen_address);
  host_.release_memory(config_.base_memory_bytes);
  for (auto& [id, s] : sessions_) {
    if (s->timeout_event) net_.simulator().cancel(s->timeout_event);
    if (s->idle_event) net_.simulator().cancel(s->idle_event);
  }
  for (uint64_t ev : probe_events_)
    if (ev) net_.simulator().cancel(ev);
  for (uint64_t ev : dead_events_)
    if (ev) net_.simulator().cancel(ev);
  for (auto& rs : resync_)
    if (rs.complete_event) net_.simulator().cancel(rs.complete_event);
}

void IncomingProxy::note_units_consumed(uint64_t n) {
  if (n == 0) return;
  queued_units_ = queued_units_ >= n ? queued_units_ - n : 0;
  if (config_.on_load_change) config_.on_load_change();
}

void IncomingProxy::end_session_spans(const std::shared_ptr<Session>& s) {
  if (!config_.tracer) return;
  for (obs::SpanId sp : s->upstream_spans) config_.tracer->end(sp);
  config_.tracer->end(s->root_span);
}

void IncomingProxy::note_instance_failure(size_t i) {
  if (config_.degradation == DegradationPolicy::kStrict) return;
  if (health_.record_failure(i)) {
    counters_.quarantines->inc();
    RDDR_LOG_WARN("%s: instance %zu (%s) quarantined", config_.name.c_str(),
                  i, config_.instance_addresses[i].c_str());
    // A quarantined instance no longer receives client units, so a live
    // session still comparing it would read ever-staler state and outvote
    // it over what is really transient unavailability. Withdraw it from
    // every session (deferred — the caller may be mid-pump on one of
    // them); the resync snapshot covers everything it misses.
    net_.simulator().schedule(0, [this, i] {
      if (health_.state(i) != HealthTracker::State::kQuarantined) return;
      std::vector<std::shared_ptr<Session>> live;
      for (auto& [id, s] : sessions_) live.push_back(s);
      for (auto& s : live) {
        if (s->ended || !s->participating[i]) continue;
        if (drop_instance(s, i, "quarantined")) pump(s);
      }
    });
    schedule_reconnect(i);
  }
}

void IncomingProxy::schedule_reconnect(size_t i) {
  if (probe_events_[i]) return;
  if (health_.state(i) != HealthTracker::State::kQuarantined) return;
  if (health_.attempts_exhausted(i)) {
    RDDR_LOG_WARN("%s: instance %zu (%s) declared dead after %u failed "
                  "reconnect attempts",
                  config_.name.c_str(), i,
                  config_.instance_addresses[i].c_str(), health_.attempts(i));
    notify_dead(i, "reconnect attempts exhausted");
    return;
  }
  sim::Time delay = health_.next_backoff(i);
  probe_events_[i] = net_.simulator().schedule(delay, [this, i] {
    probe_events_[i] = 0;
    if (health_.state(i) != HealthTracker::State::kQuarantined) return;
    auto probe = net_.connect(
        config_.instance_addresses[i],
        {.source = config_.name, .flow = {.label = "health-probe"}});
    if (!probe) {
      schedule_reconnect(i);
      return;
    }
    probe->close();
    if (config_.resync.enabled && config_.resync.warm) {
      begin_resync(i);
      return;
    }
    health_.readmit(i);
    counters_.reconnects->inc();
    RDDR_LOG_INFO("%s: instance %zu (%s) re-admitted after reconnect",
                  config_.name.c_str(), i,
                  config_.instance_addresses[i].c_str());
  });
}

void IncomingProxy::notify_dead(size_t i, const std::string& reason) {
  health_.mark_dead(i);
  if (!config_.on_instance_dead || dead_events_[i]) return;
  // Deferred to a fresh event: the hook typically replaces the instance,
  // which rewrites proxy state — never reenter mid-pump.
  dead_events_[i] = net_.simulator().schedule(0, [this, i, reason] {
    dead_events_[i] = 0;
    if (health_.state(i) == HealthTracker::State::kDead)
      config_.on_instance_dead(i, reason);
  });
}

void IncomingProxy::begin_resync(size_t i) {
  if (!health_.begin_resync(i)) return;
  counters_.resyncs->inc();
  ResyncState& rs = resync_[i];
  rs = ResyncState{};
  if (config_.tracer) {
    rs.trace = config_.tracer->id_stream(config_.name)->next_trace();
    rs.span = config_.tracer->begin(rs.trace, 0, "resync", config_.name);
    config_.tracer->tag(rs.span, "instance", strformat("%zu", i));
    config_.tracer->tag(rs.span, "address", config_.instance_addresses[i]);
  }
  ResyncOptions::WarmResult warmed = config_.resync.warm(i);
  int64_t bytes = warmed.bytes;
  if (bytes < 0) {
    fail_resync(i, "state transfer failed");
    return;
  }
  counters_.pages_shipped->inc(warmed.pages_shipped);
  counters_.wal_bytes_replayed->inc(warmed.wal_bytes);
  rs.active = true;
  rs.bytes = bytes;
  if (config_.tracer) {
    config_.tracer->tag(rs.span, "bytes",
                        strformat("%lld", static_cast<long long>(bytes)));
    config_.tracer->tag(rs.span, "mode", warmed.mode);
    if (warmed.pages_shipped)
      config_.tracer->tag(rs.span, "pages_shipped",
                          strformat("%llu", static_cast<unsigned long long>(
                                                warmed.pages_shipped)));
    if (warmed.wal_records)
      config_.tracer->tag(rs.span, "wal_records",
                          strformat("%llu", static_cast<unsigned long long>(
                                                warmed.wal_records)));
  }
  sim::Time window = std::max(
      config_.resync.min_transfer_time,
      static_cast<sim::Time>(static_cast<double>(bytes) *
                             config_.resync.transfer_seconds_per_byte *
                             static_cast<double>(sim::kSecond)));
  RDDR_LOG_INFO("%s: instance %zu (%s) resyncing: %lld bytes warmed, "
                "journaling writes for %lld ns",
                config_.name.c_str(), i, config_.instance_addresses[i].c_str(),
                static_cast<long long>(bytes),
                static_cast<long long>(window));
  rs.complete_event = net_.simulator().schedule(window, [this, i] {
    resync_[i].complete_event = 0;
    finish_resync(i);
  });
}

void IncomingProxy::fail_resync(size_t i, const std::string& why) {
  ResyncState& rs = resync_[i];
  if (rs.complete_event) {
    net_.simulator().cancel(rs.complete_event);
    rs.complete_event = 0;
  }
  rs.active = false;
  rs.journal.clear();
  if (config_.tracer && rs.span) {
    config_.tracer->tag(rs.span, "failed", why);
    config_.tracer->end(rs.span);
    rs.span = 0;
  }
  RDDR_LOG_WARN("%s: instance %zu (%s) resync failed (%s); back to "
                "quarantine",
                config_.name.c_str(), i, config_.instance_addresses[i].c_str(),
                why.c_str());
  health_.resync_failed(i);
  schedule_reconnect(i);
}

void IncomingProxy::finish_resync(size_t i) {
  ResyncState& rs = resync_[i];
  if (!rs.active) return;
  if (rs.overflow) {
    fail_resync(i, strformat("journal overflow (> %zu units)",
                             config_.resync.journal_max_units));
    return;
  }
  size_t replayed = 0;
  if (!rs.journal.empty()) {
    sim::ConnectMeta meta;
    meta.source = config_.name;
    meta.flow.label = "resync-replay";
    meta.flow.trace_id = rs.trace;
    meta.flow.parent_span = rs.span;
    // Infrastructure traffic gets its own root frame — it belongs to no
    // client request's call path.
    meta.flow.index.push(ExecutionIndex::site_id(config_.name, "resync-replay"),
                         static_cast<uint32_t>(i));
    auto conn = net_.connect(config_.instance_addresses[i], meta);
    if (!conn) {
      fail_resync(i, "instance unreachable at journal replay");
      return;
    }
    Bytes preamble = config_.plugin->resync_preamble();
    if (!preamble.empty()) conn->send(preamble);
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair;
    ctx.variance = &config_.variance;
    ctx.session = &token_state_;
    for (const Unit& u : rs.journal) {
      conn->send(SharedBytes(config_.plugin->rewrite_for_instance(u, i, ctx)));
      counters_.journal_replayed_requests->inc();
      ++replayed;
    }
    conn->close();  // graceful: queued bytes are delivered first
  }
  rs.journal.clear();
  rs.active = false;
  if (config_.tracer && rs.span) {
    config_.tracer->tag(rs.span, "journal_replayed", strformat("%zu", replayed));
    config_.tracer->end(rs.span);
    rs.span = 0;
  }
  health_.readmit(i);
  counters_.reconnects->inc();
  RDDR_LOG_INFO("%s: instance %zu (%s) resynced and re-admitted (%zu "
                "journaled units replayed)",
                config_.name.c_str(), i, config_.instance_addresses[i].c_str(),
                replayed);
}

void IncomingProxy::journal_unit(size_t i, const Unit& u) {
  ResyncState& rs = resync_[i];
  if (rs.overflow) return;
  if (rs.journal.size() >= config_.resync.journal_max_units) {
    rs.overflow = true;  // finish_resync aborts; a later probe starts over
    return;
  }
  rs.journal.push_back(u);
}

void IncomingProxy::shadow_unit(const std::shared_ptr<Session>& s, size_t i,
                                const Unit& u, const CompareContext& ctx) {
  auto& sh = s->shadows[i];
  if (sh && !sh->is_open()) sh = nullptr;  // stale (crash or replacement)
  if (!sh) {
    sim::ConnectMeta meta;
    meta.source = config_.name;
    meta.flow.label =
        strformat("catchup-%llu", static_cast<unsigned long long>(s->id));
    meta.flow.trace_id = s->trace;
    meta.flow.parent_span = s->root_span;
    // Shadow replay nests under the session's path: one child frame per
    // shadowed instance, so corpus records during catch-up still attribute
    // to the originating request.
    meta.flow.index = s->index.child(
        ExecutionIndex::site_id(config_.name, "catchup-shadow"),
        static_cast<uint32_t>(i));
    sh = net_.connect(config_.instance_addresses[i], meta);
    if (!sh) return;  // flapped again; the health machinery will notice
    Bytes preamble = config_.plugin->resync_preamble();
    if (!preamble.empty()) sh->send(preamble);
  }
  sh->send(SharedBytes(config_.plugin->rewrite_for_instance(u, i, ctx)));
  counters_.journal_replayed_requests->inc();
}

void IncomingProxy::replace_instance(size_t i,
                                     const std::string& new_address) {
  if (probe_events_[i]) {
    net_.simulator().cancel(probe_events_[i]);
    probe_events_[i] = 0;
  }
  if (dead_events_[i]) {
    net_.simulator().cancel(dead_events_[i]);
    dead_events_[i] = 0;
  }
  ResyncState& rs = resync_[i];
  if (rs.complete_event) {
    net_.simulator().cancel(rs.complete_event);
    rs.complete_event = 0;
  }
  if (config_.tracer && rs.span) {
    config_.tracer->tag(rs.span, "aborted", "instance replaced");
    config_.tracer->end(rs.span);
  }
  rs = ResyncState{};
  // Catch-up connections of live sessions still point at the old replica;
  // drop them so the next shadowed unit dials the new address.
  for (auto& [id, s] : sessions_) {
    if (i < s->shadows.size() && s->shadows[i]) {
      if (s->shadows[i]->is_open()) s->shadows[i]->close();
      s->shadows[i] = nullptr;
    }
  }
  config_.instance_addresses[i] = new_address;
  health_.reset_replaced(i);
  counters_.replacements->inc();
  RDDR_LOG_INFO("%s: instance %zu replaced; now %s (quarantined until "
                "probe + resync)",
                config_.name.c_str(), i, new_address.c_str());
  schedule_reconnect(i);
}

void IncomingProxy::on_accept(sim::ConnPtr conn) {
  // Targeted path quarantine: a call site whose interventions crossed the
  // threshold is refused outright — one poisoned path through the graph is
  // blocked while every other caller of this edge keeps being served. Only
  // indexed (nested) flows qualify; root edge sessions all share the
  // proxy's own listen site and are never path-blocked.
  if (config_.path_quarantine_threshold > 0 && !conn->flow().index.empty()) {
    auto it = path_strikes_.find(conn->flow().index.leaf_site());
    if (it != path_strikes_.end() &&
        it->second >= config_.path_quarantine_threshold) {
      counters_.path_blocks->inc();
      RDDR_LOG_INFO("%s: refusing session from quarantined call path %s",
                    config_.name.c_str(),
                    conn->flow().index.describe().c_str());
      Bytes page = config_.plugin->intervention_response();
      if (!page.empty() && conn->is_open()) conn->send(page);
      if (conn->is_open()) conn->close();
      return;
    }
  }
  auto s = std::make_shared<Session>();
  s->id = next_session_id_++;
  s->client = std::move(conn);
  s->client_framer = config_.plugin->make_framer(Direction::kClientToServer);
  counters_.sessions->inc();

  // Execution index: nested hops keep the caller's index (its leaf frame
  // is the call site that dialed this edge); an originating edge request
  // mints the root frame (listen site, session id).
  if (s->client->flow().index.empty()) {
    s->index.push(
        ExecutionIndex::site_id(config_.name, config_.listen_address),
        static_cast<uint32_t>(s->id));
  } else {
    s->index = s->client->flow().index;
  }

  // Reuse the caller's trace when the connection carries one (the workload
  // driver and nested hops tag their connects) — divergence records carry
  // it even when no tracer is configured.
  s->trace = s->client->flow().trace_id;
  obs::Tracer* tracer = config_.tracer;
  if (tracer) {
    // Untraced edge request: this session starts a fresh trace.
    if (!s->trace) s->trace = tracer->id_stream(config_.name)->next_trace();
    s->root_span = tracer->begin(s->trace, s->client->flow().parent_span,
                                 "session", config_.name);
    if (!s->client->meta().source.empty())
      tracer->tag(s->root_span, "client", s->client->meta().source);
  }

  const size_t n = config_.instance_addresses.size();
  const bool strict = config_.degradation == DegradationPolicy::kStrict;
  s->queues.resize(n);
  s->upstream_closed.resize(n, false);
  s->participating.assign(n, false);
  s->upstreams.resize(n);
  s->upstream_framers.resize(n);
  s->upstream_spans.assign(n, 0);
  s->shadows.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!strict && !health_.is_healthy(i)) continue;  // quarantined: skip
    sim::ConnectMeta meta;
    meta.source = config_.name;
    meta.flow.label =
        strformat("in-%llu", static_cast<unsigned long long>(s->id));
    meta.flow.trace_id = s->trace;
    meta.flow.parent_span = s->root_span;
    // Replication is transparent to the call path: all N upstream dials
    // carry the session's index unchanged, so the instances' own onward
    // dials nest under the same logical hop.
    meta.flow.index = s->index;
    auto up = net_.connect(config_.instance_addresses[i], meta);
    if (!up) {
      RDDR_LOG_WARN("%s: instance %zu (%s) refused connection",
                    config_.name.c_str(), i,
                    config_.instance_addresses[i].c_str());
      counters_.instance_unreachable->inc();
      if (strict) {
        // Unavailability is not an attack: refuse the client without a
        // divergence count or bus report, and tear down the upstream
        // connections already opened for lower indices (these leaked
        // before).
        for (size_t j = 0; j < i; ++j)
          if (s->upstreams[j] && s->upstreams[j]->is_open())
            s->upstreams[j]->close();
        Bytes page = config_.plugin->intervention_response();
        if (!page.empty() && s->client->is_open()) s->client->send(page);
        if (s->client->is_open()) s->client->close();
        if (tracer) tracer->tag(s->root_span, "refused", "instance unreachable");
        end_session_spans(s);
        return;
      }
      note_instance_failure(i);
      continue;
    }
    s->upstreams[i] = up;
    s->upstream_framers[i] =
        config_.plugin->make_framer(Direction::kServerToClient);
    s->participating[i] = true;
    if (tracer) {
      s->upstream_spans[i] =
          tracer->begin(s->trace, s->root_span, "upstream", config_.name);
      tracer->tag(s->upstream_spans[i], "instance", strformat("%zu", i));
      tracer->tag(s->upstream_spans[i], "address",
                  config_.instance_addresses[i]);
    }
  }

  const size_t live = s->live();
  if (live < n) {
    s->degraded = true;
    counters_.degraded_sessions->inc();
  }
  const bool failopen_ok = config_.degradation == DegradationPolicy::kFailOpen;
  if (live == 0 || (live == 1 && !failopen_ok)) {
    // Nothing to serve (or a single instance we are not allowed to trust
    // unverified): refuse the client. Not a divergence.
    for (auto& up : s->upstreams)
      if (up && up->is_open()) up->close();
    Bytes page = config_.plugin->intervention_response();
    if (!page.empty() && s->client->is_open()) s->client->send(page);
    if (s->client->is_open()) s->client->close();
    if (tracer) tracer->tag(s->root_span, "refused", "too few healthy instances");
    end_session_spans(s);
    return;
  }

  sessions_[s->id] = s;
  for (size_t i = 0; i < n; ++i)
    if (s->participating[i]) attach_upstream(s, i);
  s->last_progress = net_.simulator().now();
  arm_idle(s);

  if (live == 1) {
    size_t sole = 0;
    for (size_t i = 0; i < n; ++i)
      if (s->participating[i]) sole = i;
    enter_failopen(s, sole);
  }

  s->client->set_on_data([this, s](ByteView data) {
    if (s->ended) return;
    if (s->client_passthrough) {
      // Wrap once; all N upstreams share the buffer.
      SharedBytes shared{data};
      for (auto& up : s->upstreams)
        if (up && up->is_open()) up->send(shared);
      return;
    }
    s->client_framer->feed(data);
    if (s->client_framer->failed()) {
      // The client speaks something our framer does not understand; fall
      // back to raw replication so the instances decide (their responses
      // are still diffed).
      s->client_passthrough = true;
      counters_.passthrough_sessions->inc();
      SharedBytes rest{Bytes(s->client_framer->unconsumed())};
      for (auto& up : s->upstreams)
        if (up && up->is_open()) up->send(rest);
      return;
    }
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair;
    ctx.variance = &config_.variance;
    ctx.session = &token_state_;
    for (auto& u : s->client_framer->take()) {
      s->last_progress = net_.simulator().now();
      if (config_.signature_blocking) {
        uint64_t fp = std::hash<std::string>()(u.data);
        auto hit = signatures_.find(fp);
        if (hit != signatures_.end() &&
            hit->second >= config_.signature_threshold) {
          // Known-bad input: refuse at the proxy; the instances never see
          // the request (the §IV-D repeated-divergence DoS mitigation).
          counters_.signature_blocks->inc();
          RDDR_LOG_INFO("%s: refused request matching divergence signature",
                        config_.name.c_str());
          if (config_.tracer) {
            obs::SpanId ev = config_.tracer->event(s->trace, s->root_span,
                                                   "replicate", config_.name);
            config_.tracer->tag(ev, "blocked", "divergence signature");
          }
          Bytes page = config_.plugin->intervention_response();
          if (!page.empty() && s->client->is_open()) s->client->send(page);
          teardown(s);
          return;
        }
        s->last_unit_fingerprint = fp;
        s->has_fingerprint = true;
      }
      counters_.units_replicated->inc();
      if (config_.tracer) {
        obs::SpanId ev = config_.tracer->event(s->trace, s->root_span,
                                               "replicate", config_.name);
        config_.tracer->tag(ev, "fanout", strformat("%zu", s->live()));
        config_.tracer->tag(ev, "bytes", strformat("%zu", u.data.size()));
      }
      // Identity-rewrite fast path: materialise the unit once and fan the
      // same refcounted buffer out to every participating instance. Plugins
      // that restore per-instance tokens (HTTP) take the rewrite path.
      const bool identity = config_.plugin->rewrites_identity();
      SharedBytes shared;
      if (identity) shared = SharedBytes(Bytes(u.data));
      for (size_t i = 0; i < s->upstreams.size(); ++i) {
        if (s->participating[i] && s->upstreams[i]) {
          if (identity) {
            s->upstreams[i]->send(shared);
          } else {
            s->upstreams[i]->send(
                SharedBytes(config_.plugin->rewrite_for_instance(u, i, ctx)));
          }
          continue;
        }
        // Instance absent from this session. Mid-resync its copy of this
        // unit is journaled; once readmitted, catch-up shadowing keeps it
        // from drifting while this (pre-readmission) session lives on.
        // Quarantined instances get neither: the resync snapshot covers
        // everything they miss. Session-lifecycle units never replay.
        if (!config_.plugin->replayable(u)) continue;
        if (resync_[i].active) {
          journal_unit(i, u);
        } else if (config_.resync.enabled && config_.resync.catch_up_sessions &&
                   health_.is_healthy(i)) {
          shadow_unit(s, i, u, ctx);
        }
      }
    }
  });
  s->client->set_on_close([this, s] {
    if (s->ended) return;
    teardown(s);
  });
}

void IncomingProxy::attach_upstream(const std::shared_ptr<Session>& s,
                                    size_t i) {
  auto up = s->upstreams[i];
  up->set_on_data([this, s, i](ByteView data) {
    if (s->ended || !s->participating[i]) return;
    if (s->failopen) {
      s->last_progress = net_.simulator().now();
      if (s->client->is_open()) s->client->send(data);
      return;
    }
    auto& framer = *s->upstream_framers[i];
    framer.feed(data);
    if (framer.failed()) {
      if (config_.degradation == DegradationPolicy::kStrict) {
        intervene(s, strformat("instance %zu response framing error", i));
      } else if (drop_instance(s, i, "response framing error")) {
        pump(s);
      }
      return;
    }
    for (auto& u : framer.take()) {
      s->queues[i].push_back(std::move(u));
      ++queued_units_;
    }
    arm_timeout(s);
    pump(s);
  });
  up->set_on_close([this, s, i] {
    if (s->ended || !s->participating[i]) return;
    s->upstream_closed[i] = true;
    if (s->failopen) {
      // The sole surviving instance is gone: nothing left to serve.
      teardown(s);
      return;
    }
    // Divergence-by-silence or a crash: pump decides with queue context.
    pump(s);
  });
}

void IncomingProxy::enter_failopen(const std::shared_ptr<Session>& s,
                                   size_t sole) {
  s->failopen = true;
  s->failopen_idx = sole;
  s->client_passthrough = true;
  counters_.passthrough_sessions->inc();
  if (config_.tracer) config_.tracer->tag(s->root_span, "failopen",
                                          strformat("instance %zu", sole));
  RDDR_LOG_WARN("%s: session %llu FAIL-OPEN: forwarding instance %zu "
                "uncompared (fewer than 2 healthy instances)",
                config_.name.c_str(),
                static_cast<unsigned long long>(s->id), sole);
  // Everything already framed or buffered for the survivor flows straight
  // to the client from here on.
  for (auto& u : s->queues[sole])
    if (s->client->is_open()) s->client->send(u.data);
  note_units_consumed(s->queues[sole].size());
  s->queues[sole].clear();
  if (s->upstream_framers[sole]) {
    Bytes rest = s->upstream_framers[sole]->unconsumed();
    if (!rest.empty() && s->client->is_open()) s->client->send(rest);
  }
  if (s->timeout_event) {
    net_.simulator().cancel(s->timeout_event);
    s->timeout_event = 0;
  }
}

bool IncomingProxy::drop_instance(const std::shared_ptr<Session>& s, size_t i,
                                  const std::string& why) {
  if (s->ended) return false;
  if (!s->participating[i]) return true;
  RDDR_LOG_WARN("%s: session %llu: dropping instance %zu (%s)",
                config_.name.c_str(),
                static_cast<unsigned long long>(s->id), i, why.c_str());
  s->participating[i] = false;
  if (s->upstreams[i] && s->upstreams[i]->is_open()) s->upstreams[i]->close();
  s->upstreams[i] = nullptr;
  note_units_consumed(s->queues[i].size());
  s->queues[i].clear();
  if (config_.tracer && s->upstream_spans[i]) {
    config_.tracer->tag(s->upstream_spans[i], "dropped", why);
    config_.tracer->end(s->upstream_spans[i]);
  }
  if (!s->degraded) {
    s->degraded = true;
    counters_.degraded_sessions->inc();
  }
  const size_t live = s->live();
  if (live >= 2) return true;
  if (live == 1 && config_.degradation == DegradationPolicy::kFailOpen) {
    size_t sole = 0;
    for (size_t j = 0; j < s->participating.size(); ++j)
      if (s->participating[j]) sole = j;
    enter_failopen(s, sole);
    return false;  // pump must not compare a fail-open session
  }
  // kQuorum with < 2 healthy: nothing left to verify against — refuse the
  // rest of the session (fail closed, but not a divergence).
  Bytes page = config_.plugin->intervention_response();
  if (!page.empty() && s->client && s->client->is_open())
    s->client->send(page);
  teardown(s);
  return false;
}

void IncomingProxy::arm_timeout(const std::shared_ptr<Session>& s) {
  if (config_.unit_timeout <= 0 || s->ended || s->failopen) return;
  bool some = false, all = true;
  for (size_t i = 0; i < s->queues.size(); ++i) {
    if (!s->participating[i]) continue;
    if (s->queues[i].empty()) all = false;
    else some = true;
  }
  if (some && !all && !s->timeout_event) {
    s->timeout_event = net_.simulator().schedule(
        config_.unit_timeout, [this, s] {
          s->timeout_event = 0;
          if (s->ended || s->failopen) return;
          std::vector<size_t> silent;
          bool have_output = false;
          for (size_t i = 0; i < s->queues.size(); ++i) {
            if (!s->participating[i]) continue;
            if (s->queues[i].empty()) silent.push_back(i);
            else have_output = true;
          }
          if (silent.empty() || !have_output) return;
          counters_.timeouts->inc();
          if (config_.degradation == DegradationPolicy::kStrict) {
            intervene(s, "instance response timeout");
            return;
          }
          // Non-strict: the silent instances are lost, not the session.
          for (size_t i : silent) {
            counters_.instance_unreachable->inc();
            note_instance_failure(i);
            if (!drop_instance(s, i, "response timeout")) return;
          }
          pump(s);
        });
  }
}

void IncomingProxy::pump(const std::shared_ptr<Session>& s) {
  if (s->busy || s->ended || s->failopen) return;
  const bool strict = config_.degradation == DegradationPolicy::kStrict;

  bool rescan = true;
  while (rescan) {
    rescan = false;
    for (size_t i = 0; i < s->queues.size(); ++i) {
      if (!s->participating[i] || !s->queues[i].empty()) continue;
      if (!s->upstream_closed[i]) continue;
      // This instance is gone. If a peer has produced output, the
      // deployment has diverged (strict) or the instance crashed mid-unit
      // (degraded); if nobody has anything pending, the close is a normal
      // end-of-session — propagate it once everyone closed.
      bool peer_has_output = false;
      for (size_t j = 0; j < s->queues.size(); ++j)
        if (s->participating[j] && !s->queues[j].empty())
          peer_has_output = true;
      if (peer_has_output) {
        if (strict) {
          intervene(s,
                    strformat("instance %zu closed while peers responded", i));
          return;
        }
        counters_.instance_unreachable->inc();
        note_instance_failure(i);
        if (!drop_instance(s, i, "closed while peers responded")) return;
        rescan = true;
        break;
      }
      bool all_closed = true;
      for (size_t j = 0; j < s->queues.size(); ++j)
        if (s->participating[j] && !s->upstream_closed[j]) all_closed = false;
      if (all_closed) teardown(s);
      return;
    }
  }

  bool all_ready = true;
  for (size_t i = 0; i < s->queues.size(); ++i)
    if (s->participating[i] && s->queues[i].empty()) all_ready = false;
  if (!all_ready) return;

  if (s->timeout_event) {
    net_.simulator().cancel(s->timeout_event);
    s->timeout_event = 0;
  }

  auto units = std::make_shared<std::vector<Unit>>();
  std::vector<size_t> idxmap;  // unit position -> instance id
  size_t bytes = 0;
  for (size_t i = 0; i < s->queues.size(); ++i) {
    if (!s->participating[i]) continue;
    bytes += s->queues[i].front().data.size();
    units->push_back(std::move(s->queues[i].front()));
    s->queues[i].pop_front();
    idxmap.push_back(i);
  }
  note_units_consumed(idxmap.size());
  s->busy = true;
  obs::SpanId diff_span = 0;
  const sim::Time diff_start = net_.simulator().now();
  if (config_.tracer) {
    diff_span =
        config_.tracer->begin(s->trace, s->root_span, "diff", config_.name);
    config_.tracer->tag(diff_span, "instances",
                        strformat("%zu", idxmap.size()));
  }
  double cost = config_.cpu_per_unit +
                static_cast<double>(bytes) * config_.cpu_per_byte;
  host_.run_task(cost, [this, s, units, idxmap = std::move(idxmap), diff_span,
                        diff_start] {
    s->busy = false;
    counters_.compare_ms->observe(
        static_cast<double>(net_.simulator().now() - diff_start) / 1e6);
    obs::Tracer* tracer = config_.tracer;
    if (tracer) {
      // The de-noise pass runs inside the plugin's compare; a marker span
      // keeps it visible in the taxonomy.
      obs::SpanId dn = tracer->event(s->trace, diff_span, "denoise",
                                     config_.name);
      tracer->tag(dn, "filter_pair", config_.filter_pair ? "true" : "false");
    }
    if (s->ended) {
      if (tracer) tracer->end(diff_span);
      return;
    }
    counters_.units_compared->inc();
    const size_t n = config_.instance_addresses.size();
    CompareContext ctx;
    // The de-noise mask needs the filter pair in slots 0/1; a degraded
    // group may have lost one of them.
    ctx.filter_pair = config_.filter_pair && idxmap.size() >= 2 &&
                      idxmap[0] == 0 && idxmap[1] == 1;
    ctx.variance = &config_.variance;
    // Token harvesting assumes per-instance vectors of length N; skip it
    // for degraded groups (pre-harvested tokens still rewrite fine).
    ctx.session = idxmap.size() == n ? &token_state_ : nullptr;

    auto verdict = [&](const char* v) -> obs::SpanId {
      if (!tracer) return 0;
      obs::SpanId sp = tracer->event(s->trace, diff_span, "verdict",
                                     config_.name);
      tracer->tag(sp, "verdict", v);
      return sp;
    };

    Bytes fwd;
    if (config_.degradation == DegradationPolicy::kStrict) {
      BatchVerdict outcome =
          engine_.compare(*config_.plugin, *units, ctx, VoteMode::kStrict);
      if (!outcome.agreed) {
        obs::SpanId sp = verdict("divergent");
        if (tracer) {
          tracer->tag(sp, "reason", outcome.reason);
          tracer->end(diff_span);
        }
        intervene(s, outcome.reason, &outcome, units.get());
        return;
      }
      verdict("agree");
      fwd = engine_.forward_downstream(*config_.plugin, *units, ctx);
    } else {
      BatchVerdict vote =
          engine_.compare(*config_.plugin, *units, ctx, VoteMode::kQuorum);
      if (!vote.agreed) {
        obs::SpanId sp = verdict("divergent");
        if (tracer) {
          tracer->tag(sp, "reason", vote.reason);
          tracer->end(diff_span);
        }
        intervene(s, vote.reason, &vote, units.get());
        return;
      }
      if (vote.outlier != SIZE_MAX) {
        size_t inst = idxmap[vote.outlier];
        counters_.quorum_outvotes->inc();
        record_divergence("outvote", vote.reason, &vote, units.get(), s.get());
        obs::SpanId sp = verdict("outvoted");
        if (tracer)
          tracer->tag(sp, "outvoted_instance", strformat("%zu", inst));
        RDDR_LOG_WARN("%s: session %llu: instance %zu outvoted by quorum "
                      "(%zu-of-%zu agree); quarantining it",
                      config_.name.c_str(),
                      static_cast<unsigned long long>(s->id), inst,
                      units->size() - 1, units->size());
        if (health_.quarantine(inst)) counters_.quarantines->inc();
        // A divergent answer is evidence of compromise, not transient
        // unavailability: no automatic re-admission (probes only test
        // reachability, which an outvoted instance still has). With an
        // orchestrator attached, on_instance_dead replaces the replica.
        notify_dead(inst, "outvoted by quorum");
        units->erase(units->begin() +
                     static_cast<std::ptrdiff_t>(vote.outlier));
        ctx.filter_pair = ctx.filter_pair && vote.outlier > 1;
        ctx.session = nullptr;  // degraded group: see above
        if (!drop_instance(s, inst, "outvoted by quorum")) {
          if (tracer) tracer->end(diff_span);
          return;
        }
      } else {
        for (size_t i : idxmap) health_.record_success(i);
        verdict("agree");
      }
      fwd = engine_.forward_downstream(*config_.plugin, *units, ctx);
    }
    if (tracer) tracer->end(diff_span);
    s->last_progress = net_.simulator().now();
    if (s->client->is_open()) s->client->send(SharedBytes(std::move(fwd)));
    pump(s);
    arm_timeout(s);
  });
}

void IncomingProxy::arm_idle(const std::shared_ptr<Session>& s) {
  if (config_.idle_timeout <= 0 || s->ended) return;
  const sim::Time now = net_.simulator().now();
  const sim::Time due = s->last_progress + config_.idle_timeout;
  s->idle_event = net_.simulator().schedule(due > now ? due - now : 1,
                                            [this, s] {
    s->idle_event = 0;
    if (s->ended) return;
    if (net_.simulator().now() - s->last_progress < config_.idle_timeout) {
      arm_idle(s);  // progress since the last arm; re-check at the new due
      return;
    }
    counters_.idle_sheds->inc();
    RDDR_LOG_INFO("%s: session %llu shed: no protocol progress for %lld ns",
                  config_.name.c_str(),
                  static_cast<unsigned long long>(s->id),
                  static_cast<long long>(config_.idle_timeout));
    if (config_.tracer)
      config_.tracer->tag(s->root_span, "shed", "idle timeout");
    Bytes page = config_.plugin->overload_response();
    if (!page.empty() && s->client && s->client->is_open())
      s->client->send(page);
    teardown(s);
  });
}

void IncomingProxy::record_divergence(const char* verdict_class,
                                      const std::string& reason,
                                      const BatchVerdict* verdict,
                                      const std::vector<Unit>* units,
                                      const Session* s) {
  DivergenceRecord rec;
  rec.time = net_.simulator().now();
  rec.proxy = config_.name;
  rec.protocol = config_.plugin->name();
  rec.verdict = verdict_class;
  rec.reason = reason;
  if (units && !units->empty()) {
    rec.unit_kind = (*units)[0].kind;
    rec.unit_data = (*units)[0].data;
  }
  if (verdict) {
    rec.region_line = verdict->region.line;
    rec.region_offset = verdict->region.offset;
    rec.region_instance = verdict->region.instance;
  }
  if (s) {
    rec.trace_id = s->trace;
    rec.index = s->index;
  }
  // The one reporting path: the bus logs the record, dedups per callsite,
  // notifies record subscribers and — for interventions — emits the
  // cross-proxy abort event.
  bus_->report(rec);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Legacy per-proxy hook, honoured until out-of-tree callers move to the
  // bus record stream.
  if (config_.on_divergence) config_.on_divergence(rec);
#pragma GCC diagnostic pop
}

void IncomingProxy::intervene(const std::shared_ptr<Session>& s,
                              const std::string& reason,
                              const BatchVerdict* verdict,
                              const std::vector<Unit>* units) {
  if (s->ended) return;
  counters_.divergences->inc();
  RDDR_LOG_INFO("%s: intervention on session %llu: %s", config_.name.c_str(),
                static_cast<unsigned long long>(s->id), reason.c_str());
  if (config_.tracer) config_.tracer->tag(s->root_span, "intervention", reason);
  if (config_.signature_blocking && s->has_fingerprint)
    ++signatures_[s->last_unit_fingerprint];
  // Path quarantine strikes accrue against the call site that dialed this
  // edge (nested flows only; root sessions carry the proxy's own site).
  if (config_.path_quarantine_threshold > 0 && s->client &&
      !s->client->flow().index.empty())
    ++path_strikes_[s->index.leaf_site()];
  record_divergence("intervention", reason, verdict, units, s.get());
  Bytes page = config_.plugin->intervention_response();
  if (!page.empty() && s->client && s->client->is_open())
    s->client->send(page);
  teardown(s);
}

void IncomingProxy::teardown(const std::shared_ptr<Session>& s) {
  if (s->ended) return;
  s->ended = true;
  if (s->timeout_event) {
    net_.simulator().cancel(s->timeout_event);
    s->timeout_event = 0;
  }
  if (s->idle_event) {
    net_.simulator().cancel(s->idle_event);
    s->idle_event = 0;
  }
  if (s->client && s->client->is_open()) s->client->close();
  for (auto& up : s->upstreams)
    if (up && up->is_open()) up->close();
  for (auto& sh : s->shadows)
    if (sh && sh->is_open()) sh->close();
  end_session_spans(s);
  sessions_.erase(s->id);
  uint64_t still_queued = 0;
  for (const auto& q : s->queues) still_queued += q.size();
  note_units_consumed(still_queued);
  // Session count dropped: wake a backpressured front tier even when no
  // units were pending.
  if (still_queued == 0 && config_.on_load_change) config_.on_load_change();
}

void IncomingProxy::abort_all_sessions(const std::string& reason) {
  // Copy ids: teardown mutates the map.
  std::vector<std::shared_ptr<Session>> active;
  for (auto& [id, s] : sessions_) active.push_back(s);
  for (auto& s : active) {
    counters_.divergences->inc();
    Bytes page = config_.plugin->intervention_response();
    if (!page.empty() && s->client && s->client->is_open())
      s->client->send(page);
    RDDR_LOG_INFO("%s: aborting session %llu: %s", config_.name.c_str(),
                  static_cast<unsigned long long>(s->id), reason.c_str());
    if (config_.tracer)
      config_.tracer->tag(s->root_span, "intervention", reason);
    teardown(s);
  }
}

}  // namespace rddr::core
