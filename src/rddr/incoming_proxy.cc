#include "rddr/incoming_proxy.h"

#include <deque>

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::core {

struct IncomingProxy::Session {
  uint64_t id = 0;
  sim::ConnPtr client;
  std::unique_ptr<StreamFramer> client_framer;
  bool client_passthrough = false;

  std::vector<sim::ConnPtr> upstreams;
  std::vector<std::unique_ptr<StreamFramer>> upstream_framers;
  std::vector<std::deque<Unit>> queues;
  std::vector<bool> upstream_closed;

  bool busy = false;          // a compare task is on the host
  bool ended = false;
  uint64_t timeout_event = 0; // pending instance-timeout event id
  // Fingerprint of the most recent client unit (divergence attribution
  // for the signature store). Pipelined requests make this approximate,
  // which mirrors real signature generators.
  uint64_t last_unit_fingerprint = 0;
  bool has_fingerprint = false;
};

IncomingProxy::IncomingProxy(sim::Network& net, sim::Host& host,
                             Config config, DivergenceBus* bus)
    : net_(net), host_(host), config_(std::move(config)), bus_(bus) {
  token_state_.n_instances = config_.instance_addresses.size();
  token_state_.delete_tokens_after_use = config_.delete_tokens_after_use;
  host_.charge_memory(config_.base_memory_bytes);
  net_.listen(config_.listen_address,
              [this](sim::ConnPtr c) { on_accept(std::move(c)); });
  if (bus_) {
    bus_->subscribe([this](const DivergenceEvent& ev) {
      // A sibling proxy (the outgoing one) saw divergence: the client
      // session must not receive whatever the instances produce next.
      if (ev.proxy != config_.name)
        abort_all_sessions("sibling proxy reported: " + ev.reason);
    });
  }
}

IncomingProxy::~IncomingProxy() {
  net_.unlisten(config_.listen_address);
  host_.release_memory(config_.base_memory_bytes);
  for (auto& [id, s] : sessions_) {
    if (s->timeout_event) net_.simulator().cancel(s->timeout_event);
  }
}

void IncomingProxy::on_accept(sim::ConnPtr conn) {
  auto s = std::make_shared<Session>();
  s->id = next_session_id_++;
  s->client = std::move(conn);
  s->client_framer = config_.plugin->make_framer(Direction::kClientToServer);
  ++stats_.sessions;

  const size_t n = config_.instance_addresses.size();
  s->queues.resize(n);
  s->upstream_closed.resize(n, false);
  for (size_t i = 0; i < n; ++i) {
    auto up = net_.connect(config_.instance_addresses[i],
                           {.source = config_.name,
                            .flow_label = strformat("in-%llu", static_cast<unsigned long long>(s->id))});
    if (!up) {
      RDDR_LOG_WARN("%s: instance %zu (%s) refused connection",
                    config_.name.c_str(), i,
                    config_.instance_addresses[i].c_str());
      intervene(s, strformat("instance %zu unreachable", i), true);
      return;
    }
    s->upstreams.push_back(up);
    s->upstream_framers.push_back(
        config_.plugin->make_framer(Direction::kServerToClient));
  }
  sessions_[s->id] = s;

  for (size_t i = 0; i < n; ++i) {
    auto up = s->upstreams[i];
    up->set_on_data([this, s, i](ByteView data) {
      if (s->ended) return;
      auto& framer = *s->upstream_framers[i];
      framer.feed(data);
      if (framer.failed()) {
        intervene(s, strformat("instance %zu response framing error", i),
                  true);
        return;
      }
      for (auto& u : framer.take()) s->queues[i].push_back(std::move(u));
      arm_timeout(s);
      pump(s);
    });
    up->set_on_close([this, s, i] {
      if (s->ended) return;
      s->upstream_closed[i] = true;
      // Divergence-by-silence: another instance has queued output this
      // one will never match.
      pump(s);
    });
  }

  s->client->set_on_data([this, s](ByteView data) {
    if (s->ended) return;
    if (s->client_passthrough) {
      for (auto& up : s->upstreams) up->send(data);
      return;
    }
    s->client_framer->feed(data);
    if (s->client_framer->failed()) {
      // The client speaks something our framer does not understand; fall
      // back to raw replication so the instances decide (their responses
      // are still diffed).
      s->client_passthrough = true;
      ++stats_.passthrough_sessions;
      Bytes rest = s->client_framer->unconsumed();
      for (auto& up : s->upstreams) up->send(rest);
      return;
    }
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair;
    ctx.variance = &config_.variance;
    ctx.session = &token_state_;
    for (auto& u : s->client_framer->take()) {
      if (config_.signature_blocking) {
        uint64_t fp = std::hash<std::string>()(u.data);
        auto hit = signatures_.find(fp);
        if (hit != signatures_.end() &&
            hit->second >= config_.signature_threshold) {
          // Known-bad input: refuse at the proxy; the instances never see
          // the request (the §IV-D repeated-divergence DoS mitigation).
          ++stats_.signature_blocks;
          RDDR_LOG_INFO("%s: refused request matching divergence signature",
                        config_.name.c_str());
          Bytes page = config_.plugin->intervention_response();
          if (!page.empty() && s->client->is_open()) s->client->send(page);
          teardown(s);
          return;
        }
        s->last_unit_fingerprint = fp;
        s->has_fingerprint = true;
      }
      ++stats_.units_replicated;
      for (size_t i = 0; i < s->upstreams.size(); ++i) {
        Bytes rewritten = config_.plugin->rewrite_for_instance(u, i, ctx);
        s->upstreams[i]->send(rewritten);
      }
    }
  });
  s->client->set_on_close([this, s] {
    if (s->ended) return;
    teardown(s);
  });
}

void IncomingProxy::arm_timeout(const std::shared_ptr<Session>& s) {
  if (config_.instance_timeout <= 0 || s->ended) return;
  bool some = false, all = true;
  for (const auto& q : s->queues) {
    if (q.empty()) all = false;
    else some = true;
  }
  if (some && !all && !s->timeout_event) {
    s->timeout_event = net_.simulator().schedule(
        config_.instance_timeout, [this, s] {
          s->timeout_event = 0;
          if (s->ended) return;
          bool still_waiting = false;
          for (const auto& q : s->queues)
            if (q.empty()) still_waiting = true;
          if (still_waiting) {
            ++stats_.timeouts;
            intervene(s, "instance response timeout", true);
          }
        });
  }
}

void IncomingProxy::pump(const std::shared_ptr<Session>& s) {
  if (s->busy || s->ended) return;
  bool all_ready = true;
  bool any_ready = false;
  for (size_t i = 0; i < s->queues.size(); ++i) {
    if (s->queues[i].empty()) {
      all_ready = false;
      if (s->upstream_closed[i]) {
        // This instance is gone. If a peer has produced output, the
        // deployment has diverged; if nobody has anything pending, the
        // close is a normal end-of-session — propagate it.
        bool peer_has_output = false;
        for (const auto& q : s->queues)
          if (!q.empty()) peer_has_output = true;
        if (peer_has_output) {
          intervene(s,
                    strformat("instance %zu closed while peers responded", i),
                    true);
        } else {
          bool all_closed = true;
          for (bool c : s->upstream_closed)
            if (!c) all_closed = false;
          if (all_closed) teardown(s);
        }
        return;
      }
    } else {
      any_ready = true;
    }
  }
  (void)any_ready;
  if (!all_ready) return;

  if (s->timeout_event) {
    net_.simulator().cancel(s->timeout_event);
    s->timeout_event = 0;
  }

  auto units = std::make_shared<std::vector<Unit>>();
  size_t bytes = 0;
  for (auto& q : s->queues) {
    bytes += q.front().data.size();
    units->push_back(std::move(q.front()));
    q.pop_front();
  }
  s->busy = true;
  double cost = config_.cpu_per_unit +
                static_cast<double>(bytes) * config_.cpu_per_byte;
  host_.run_task(cost, [this, s, units] {
    s->busy = false;
    if (s->ended) return;
    ++stats_.units_compared;
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair;
    ctx.variance = &config_.variance;
    ctx.session = &token_state_;
    DiffOutcome outcome = config_.plugin->compare(*units, ctx);
    if (outcome.divergent) {
      intervene(s, outcome.reason, true);
      return;
    }
    Bytes fwd = config_.plugin->on_forward_downstream(*units, ctx);
    if (s->client->is_open()) s->client->send(fwd);
    pump(s);
    arm_timeout(s);
  });
}

void IncomingProxy::intervene(const std::shared_ptr<Session>& s,
                              const std::string& reason, bool report) {
  if (s->ended) return;
  ++stats_.divergences;
  RDDR_LOG_INFO("%s: intervention on session %llu: %s", config_.name.c_str(),
                static_cast<unsigned long long>(s->id), reason.c_str());
  if (config_.signature_blocking && s->has_fingerprint)
    ++signatures_[s->last_unit_fingerprint];
  if (report && bus_) bus_->report(config_.name, reason);
  Bytes page = config_.plugin->intervention_response();
  if (!page.empty() && s->client && s->client->is_open())
    s->client->send(page);
  teardown(s);
}

void IncomingProxy::teardown(const std::shared_ptr<Session>& s) {
  if (s->ended) return;
  s->ended = true;
  if (s->timeout_event) {
    net_.simulator().cancel(s->timeout_event);
    s->timeout_event = 0;
  }
  if (s->client && s->client->is_open()) s->client->close();
  for (auto& up : s->upstreams)
    if (up && up->is_open()) up->close();
  sessions_.erase(s->id);
}

void IncomingProxy::abort_all_sessions(const std::string& reason) {
  // Copy ids: teardown mutates the map.
  std::vector<std::shared_ptr<Session>> active;
  for (auto& [id, s] : sessions_) active.push_back(s);
  for (auto& s : active) {
    ++stats_.divergences;
    Bytes page = config_.plugin->intervention_response();
    if (!page.empty() && s->client && s->client->is_open())
      s->client->send(page);
    RDDR_LOG_INFO("%s: aborting session %llu: %s", config_.name.c_str(),
                  static_cast<unsigned long long>(s->id), reason.c_str());
    teardown(s);
  }
}

}  // namespace rddr::core
