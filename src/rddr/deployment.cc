#include "rddr/deployment.h"

namespace rddr::core {

NVersionDeployment::NVersionDeployment(sim::Network& net,
                                       sim::Host& proxy_host, Options options)
    : bus_(net.simulator()) {
  if (options.on_record) bus_.subscribe_records(options.on_record);
  // Outgoing proxies first: instances may dial the backend as soon as the
  // incoming proxy forwards them traffic.
  for (auto& out_cfg : options.outgoing) {
    outgoing_.push_back(
        std::make_unique<OutgoingProxy>(net, proxy_host, out_cfg, &bus_));
  }
  incoming_ = std::make_unique<IncomingProxy>(net, proxy_host,
                                              options.incoming, &bus_);
}

void NVersionDeployment::replace_instance(size_t i,
                                          const std::string& new_address) {
  incoming_->replace_instance(i, new_address);
  for (auto& out : outgoing_)
    out->replace_instance(i, sim::Network::node_of(new_address));
}

ProxyStats NVersionDeployment::aggregate_stats() const {
  ProxyStats total = incoming_->stats();
  for (const auto& out : outgoing_) total += out->stats();
  return total;
}

// ---- Builder ----

NVersionDeployment::Builder& NVersionDeployment::Builder::name(std::string n) {
  incoming_.name = std::move(n);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::listen(
    std::string address) {
  incoming_.listen_address = std::move(address);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::versions(
    std::vector<std::string> addresses) {
  incoming_.instance_addresses = std::move(addresses);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::add_version(
    std::string address) {
  incoming_.instance_addresses.push_back(std::move(address));
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::plugin(
    std::shared_ptr<ProtocolPlugin> p) {
  incoming_.plugin = std::move(p);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::filter_pair(
    bool on) {
  incoming_.filter_pair = on;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::variance(
    KnownVariance v) {
  incoming_.variance = std::move(v);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::degradation(
    DegradationPolicy p) {
  incoming_.degradation = p;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::health(
    HealthTracker::Options h) {
  incoming_.health = h;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::unit_timeout(
    sim::Time t) {
  incoming_.unit_timeout = t;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::idle_timeout(
    sim::Time t) {
  incoming_.idle_timeout = t;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::path_quarantine(
    uint32_t threshold) {
  incoming_.path_quarantine_threshold = threshold;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::on_divergence(
    std::function<void(const DivergenceRecord&)> cb) {
  on_record_ = std::move(cb);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::diff(
    DiffEngineOptions d) {
  incoming_.diff = std::move(d);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::cpu_model(
    double cpu_per_unit, double cpu_per_byte) {
  incoming_.cpu_per_unit = cpu_per_unit;
  incoming_.cpu_per_byte = cpu_per_byte;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::delete_tokens(
    bool on) {
  incoming_.delete_tokens_after_use = on;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::signature_blocking(
    bool on, uint32_t threshold) {
  incoming_.signature_blocking = on;
  incoming_.signature_threshold = threshold;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::resync(
    ResyncOptions r) {
  incoming_.resync = std::move(r);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::on_instance_dead(
    std::function<void(size_t, const std::string&)> fn) {
  incoming_.on_instance_dead = std::move(fn);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::backend(
    std::string listen_address, std::string backend_address) {
  PendingBackend b;
  b.cfg.listen_address = std::move(listen_address);
  b.cfg.backend_address = std::move(backend_address);
  b.inherit = true;
  backends_.push_back(std::move(b));
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::backend(
    OutgoingProxy::Config cfg) {
  backends_.push_back(PendingBackend{std::move(cfg), /*inherit=*/false});
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::metrics(
    obs::MetricsRegistry* reg) {
  incoming_.metrics = reg;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::trace(
    obs::Tracer* tracer) {
  incoming_.tracer = tracer;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::faults(
    std::function<void(sim::FaultPlan&)> fn) {
  faults_ = std::move(fn);
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::shards(size_t s) {
  incoming_.shards = s;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::admission(
    AdmissionOptions a) {
  incoming_.admission = a;
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::shard_versions(
    std::vector<std::vector<std::string>> pools) {
  shard_versions_ = std::move(pools);
  if (!shard_versions_.empty()) incoming_.shards = shard_versions_.size();
  return *this;
}

NVersionDeployment::Builder& NVersionDeployment::Builder::islands(size_t n) {
  islands_ = n;
  return *this;
}

NVersionDeployment::Options NVersionDeployment::Builder::options() const {
  Options opts;
  opts.incoming = incoming_;
  opts.on_record = on_record_;
  for (const auto& b : backends_) {
    OutgoingProxy::Config cfg = b.cfg;
    if (b.inherit) {
      cfg.name = incoming_.name + "-out";
      cfg.plugin = incoming_.plugin;
      cfg.variance = incoming_.variance;
      cfg.filter_pair = incoming_.filter_pair;
      cfg.degradation = incoming_.degradation;
      cfg.health = incoming_.health;
      cfg.unit_timeout = incoming_.unit_timeout;
      cfg.diff = incoming_.diff;
      cfg.group_size = incoming_.instance_addresses.size();
      // Instances dial the backend under their own container names.
      for (const auto& addr : incoming_.instance_addresses)
        cfg.instance_sources.push_back(sim::Network::node_of(addr));
    }
    // Sinks are deployment-wide either way: a backend() Config without its
    // own keeps the builder's.
    if (!cfg.metrics) cfg.metrics = incoming_.metrics;
    if (!cfg.tracer) cfg.tracer = incoming_.tracer;
    opts.outgoing.push_back(std::move(cfg));
  }
  return opts;
}

std::unique_ptr<NVersionDeployment> NVersionDeployment::Builder::build(
    sim::Network& net, sim::Host& proxy_host) const {
  auto d = std::make_unique<NVersionDeployment>(net, proxy_host, options());
  if (faults_) {
    d->fault_plan_ = std::make_unique<sim::FaultPlan>(net);
    faults_(*d->fault_plan_);
  }
  return d;
}

}  // namespace rddr::core
