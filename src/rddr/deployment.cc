#include "rddr/deployment.h"

namespace rddr::core {

NVersionDeployment::NVersionDeployment(sim::Network& net,
                                       sim::Host& proxy_host, Options options)
    : bus_(net.simulator()) {
  // Outgoing proxies first: instances may dial the backend as soon as the
  // incoming proxy forwards them traffic.
  for (auto& out_cfg : options.outgoing) {
    outgoing_.push_back(
        std::make_unique<OutgoingProxy>(net, proxy_host, out_cfg, &bus_));
  }
  incoming_ = std::make_unique<IncomingProxy>(net, proxy_host,
                                              options.incoming, &bus_);
}

ProxyStats NVersionDeployment::aggregate_stats() const {
  ProxyStats total = incoming_->stats();
  for (const auto& out : outgoing_) total += out->stats();
  return total;
}

}  // namespace rddr::core
