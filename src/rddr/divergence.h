// Divergence event bus.
//
// Every RDDR proxy guarding one protected microservice shares a bus: when
// the outgoing request proxy detects divergence in backend-bound traffic,
// the incoming proxy must also abort the client session (the information
// leak must not reach the client even though it was caught behind the
// instances). Tests and benches subscribe to count interventions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "netsim/simulator.h"

namespace rddr::core {

struct DivergenceEvent {
  sim::Time time = 0;
  std::string proxy;    // reporting proxy's name
  std::string reason;   // human-readable cause
};

/// One divergence, enriched for the scenario-factory corpus: protocol,
/// verdict class, the canonical diff region located by the DiffEngine, and
/// the instance-0 unit the region refers to. Proxies fire
/// ProxyOptions::on_divergence with one of these for every intervention
/// AND every quorum outvote — unlike the bus, which only carries
/// interventions (outvoted minorities are absorbed, not aborted).
struct DivergenceRecord {
  sim::Time time = 0;
  std::string proxy;      // reporting proxy's name (the topology edge)
  std::string protocol;   // ProtocolPlugin::name()
  std::string verdict;    // "intervention" | "outvote"
  std::string reason;     // DiffEngine reason string
  std::string unit_kind;  // instance-0 unit kind ("pg:S", "http-resp", ...)
  Bytes unit_data;        // instance-0 unit bytes (empty when unknown)
  // BatchVerdict::Region of the first divergence (line == SIZE_MAX when
  // the divergence was structural or located outside a compare).
  size_t region_line = SIZE_MAX;
  size_t region_offset = 0;
  size_t region_instance = SIZE_MAX;
};

class DivergenceBus {
 public:
  using Listener = std::function<void(const DivergenceEvent&)>;

  explicit DivergenceBus(sim::Simulator& sim) : sim_(sim) {}

  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  void report(std::string proxy, std::string reason) {
    DivergenceEvent ev{sim_.now(), std::move(proxy), std::move(reason)};
    events_.push_back(ev);
    // Copy: listeners may subscribe re-entrantly.
    auto listeners = listeners_;
    for (auto& l : listeners) l(ev);
  }

  const std::vector<DivergenceEvent>& events() const { return events_; }
  size_t count() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  sim::Simulator& sim_;
  std::vector<Listener> listeners_;
  std::vector<DivergenceEvent> events_;
};

}  // namespace rddr::core
