// Divergence event bus.
//
// Every RDDR proxy guarding one protected microservice shares a bus: when
// the outgoing request proxy detects divergence in backend-bound traffic,
// the incoming proxy must also abort the client session (the information
// leak must not reach the client even though it was caught behind the
// instances). Tests and benches subscribe to count interventions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netsim/simulator.h"

namespace rddr::core {

struct DivergenceEvent {
  sim::Time time = 0;
  std::string proxy;    // reporting proxy's name
  std::string reason;   // human-readable cause
};

class DivergenceBus {
 public:
  using Listener = std::function<void(const DivergenceEvent&)>;

  explicit DivergenceBus(sim::Simulator& sim) : sim_(sim) {}

  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  void report(std::string proxy, std::string reason) {
    DivergenceEvent ev{sim_.now(), std::move(proxy), std::move(reason)};
    events_.push_back(ev);
    // Copy: listeners may subscribe re-entrantly.
    auto listeners = listeners_;
    for (auto& l : listeners) l(ev);
  }

  const std::vector<DivergenceEvent>& events() const { return events_; }
  size_t count() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  sim::Simulator& sim_;
  std::vector<Listener> listeners_;
  std::vector<DivergenceEvent> events_;
};

}  // namespace rddr::core
