// Divergence attribution: one reporting surface for every divergence.
//
// Every RDDR proxy guarding one protected microservice reports each
// divergence — interventions and quorum outvotes alike — as a
// DivergenceRecord into an AttributionSink. The deployment-wide sink is the
// DivergenceBus, which fans the record out three ways:
//   * the record log + record listeners (corpus mining, benches, tests);
//   * the legacy event channel, interventions only: when the outgoing
//     request proxy detects divergence in backend-bound traffic, the
//     incoming proxy must also abort the client session (the information
//     leak must not reach the client even though it was caught behind the
//     instances);
//   * a per-callsite dedup table keyed by the record's attribution key
//     (`proto|kind|cs=<leaf site>` — the execution-index flavoured corner
//     of the corpus fingerprint space, see scenario/corpus.h).
// Records carry the full execution index (common/exec_index.h): the
// originating edge request (root frame), the hop chain, and the exact call
// site that issued the diverging call (leaf frame).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/exec_index.h"
#include "common/strutil.h"
#include "netsim/simulator.h"

namespace rddr::core {

struct DivergenceEvent {
  sim::Time time = 0;
  std::string proxy;    // reporting proxy's name
  std::string reason;   // human-readable cause
};

/// One divergence, enriched for attribution and the scenario-factory
/// corpus: protocol, verdict class, the canonical diff region located by
/// the DiffEngine, the instance-0 unit the region refers to, and the flow
/// identity — trace id plus the execution index of the connection whose
/// traffic diverged. Proxies report one of these for every intervention
/// AND every quorum outvote (outvoted minorities are absorbed, not
/// aborted; only interventions reach the cross-proxy abort channel).
struct DivergenceRecord {
  sim::Time time = 0;
  std::string proxy;      // reporting proxy's name (the topology edge)
  std::string protocol;   // ProtocolPlugin::name()
  std::string verdict;    // "intervention" | "outvote"
  std::string reason;     // DiffEngine reason string
  std::string unit_kind;  // instance-0 unit kind ("pg:S", "http-resp", ...)
  Bytes unit_data;        // instance-0 unit bytes (empty when unknown)
  // BatchVerdict::Region of the first divergence (line == SIZE_MAX when
  // the divergence was structural or located outside a compare).
  size_t region_line = SIZE_MAX;
  size_t region_offset = 0;
  size_t region_instance = SIZE_MAX;
  // Flow attribution: the trace of the originating edge request (0 when
  // untraced) and the execution index of the diverging flow — root frame =
  // edge request, leaf frame = the call site that issued this hop. Empty
  // index: the divergence happened outside any indexed flow.
  uint64_t trace_id = 0;
  ExecutionIndex index;
};

/// Per-callsite dedup key: `protocol|unit_kind|cs=<hex leaf site>`. Joins
/// the corpus fingerprint space (scenario/corpus.h) with the call site as
/// the distinguishing dimension — every divergence the same static call
/// site causes collapses to one key, however many requests hit it.
/// `cs=0` when the record carries no index.
inline std::string attribution_key(const DivergenceRecord& r) {
  return r.protocol + "|" + r.unit_kind +
         strformat("|cs=%llx",
                   static_cast<unsigned long long>(r.index.leaf_site()));
}

/// The one reporting surface: everything that observes divergences —
/// the deployment bus, test doubles, custom sinks — implements this.
class AttributionSink {
 public:
  virtual ~AttributionSink() = default;
  virtual void report(const DivergenceRecord& rec) = 0;
};

class DivergenceBus : public AttributionSink {
 public:
  using Listener = std::function<void(const DivergenceEvent&)>;
  using RecordListener = std::function<void(const DivergenceRecord&)>;

  explicit DivergenceBus(sim::Simulator& sim) : sim_(sim) {}

  /// Subscribes to the intervention event channel (cross-proxy aborts).
  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  /// Subscribes to every record (interventions and outvotes).
  void subscribe_records(RecordListener l) {
    record_listeners_.push_back(std::move(l));
  }

  /// The AttributionSink entry point: logs the record, folds it into the
  /// per-callsite dedup table, notifies record listeners, and — for
  /// interventions — emits the cross-proxy abort event.
  void report(const DivergenceRecord& rec) override {
    records_.push_back(rec);
    ++callsites_[attribution_key(rec)];
    if (rec.verdict == "intervention") {
      DivergenceEvent ev{rec.time, rec.proxy, rec.reason};
      events_.push_back(ev);
      // Index-based: listeners may subscribe re-entrantly (growing the
      // vector, possibly reallocating), so re-read size each step and
      // copy the callable out before invoking it. No per-event vector
      // copy — this is on the fuzz-sweep hot path.
      for (size_t i = 0; i < listeners_.size(); ++i) {
        Listener l = listeners_[i];
        l(ev);
      }
    }
    for (size_t i = 0; i < record_listeners_.size(); ++i) {
      RecordListener l = record_listeners_[i];
      l(rec);
    }
  }

  /// Pre-attribution entry point: a bare (proxy, reason) intervention.
  [[deprecated(
      "report a DivergenceRecord (with verdict/index) instead")]] void
  report(std::string proxy, std::string reason) {
    DivergenceRecord rec;
    rec.time = sim_.now();
    rec.proxy = std::move(proxy);
    rec.reason = std::move(reason);
    rec.verdict = "intervention";
    report(rec);
  }

  /// Intervention events (the cross-proxy abort channel). count() is the
  /// intervention count — outvote records don't appear here.
  const std::vector<DivergenceEvent>& events() const { return events_; }
  size_t count() const { return events_.size(); }

  /// Every record reported (interventions and outvotes), in order.
  const std::vector<DivergenceRecord>& records() const { return records_; }

  /// Per-callsite dedup table: attribution_key -> occurrences. Sorted map
  /// for deterministic iteration.
  const std::map<std::string, uint64_t>& callsites() const {
    return callsites_;
  }
  size_t unique_callsites() const { return callsites_.size(); }

  void clear() {
    events_.clear();
    records_.clear();
    callsites_.clear();
  }

 private:
  sim::Simulator& sim_;
  std::vector<Listener> listeners_;
  std::vector<RecordListener> record_listeners_;
  std::vector<DivergenceEvent> events_;
  std::vector<DivergenceRecord> records_;
  std::map<std::string, uint64_t> callsites_;
};

}  // namespace rddr::core
