#include "rddr/outgoing_proxy.h"

#include <algorithm>
#include <deque>

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::core {

struct OutgoingProxy::Group {
  uint64_t id = 0;
  std::string flow_label;
  std::vector<sim::ConnPtr> members;                       // instance conns
  std::vector<std::unique_ptr<StreamFramer>> framers;      // per member
  std::vector<std::deque<Unit>> queues;
  std::vector<bool> member_closed;
  std::vector<bool> participating;  // dropped members stay in the vectors
  sim::ConnPtr backend;
  bool complete = false;
  bool busy = false;
  bool ended = false;
  bool degraded = false;   // counted into degraded_sessions once
  bool failopen = false;   // sole member forwarded uncompared
  bool pair_ok = false;    // slots 0/1 hold the filter pair
  uint64_t window_event = 0;
  uint64_t unit_timeout_event = 0;
  SessionState state;  // unused by current plugins upstream, kept uniform

  // Trace context (zero when no tracer is configured). The tracer keeps
  // rooting one trace per flow group (span trees stay stable); the
  // *attribution* context instead rides the members' FlowContext — see
  // `index` below.
  obs::TraceId trace = 0;
  obs::SpanId root_span = 0;
  std::vector<obs::SpanId> member_spans;

  // Execution index of the logical call this group carries: the canonical
  // member's call path (member 0 once instance order is pinned, else the
  // first joiner). Leaf frame = the instances' dial toward this edge.
  ExecutionIndex index;

  size_t live() const {
    size_t n = 0;
    for (bool p : participating)
      if (p) ++n;
    return n;
  }
};

OutgoingProxy::OutgoingProxy(sim::Network& net, sim::Host& host,
                             Config config, DivergenceBus* bus)
    : net_(net),
      host_(host),
      config_(std::move(config)),
      bus_(bus),
      health_([this] {
        HealthTracker::Options h = config_.health;
        h.n_instances = config_.instance_sources.size();
        return h;
      }()),
      engine_(config_.diff) {
  if (!bus_) {
    // Bus-less construction keeps the one-sink invariant: the proxy owns a
    // private bus, so every divergence still flows through AttributionSink.
    own_bus_ = std::make_unique<DivergenceBus>(net.simulator());
    bus_ = own_bus_.get();
  }
  if (config_.metrics) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  counters_.bind(*metrics_, config_.name);
  host_.charge_memory(config_.base_memory_bytes);
  net_.listen(config_.listen_address,
              [this](sim::ConnPtr c) { on_accept(std::move(c)); });
  if (bus_) {
    bus_->subscribe([this](const DivergenceEvent& ev) {
      // A sibling proxy (the incoming one) saw divergence: whatever the
      // instances are sending the backend must not go through.
      if (ev.proxy != config_.name)
        abort_all_sessions("sibling proxy reported: " + ev.reason);
    });
  }
}

OutgoingProxy::~OutgoingProxy() {
  net_.unlisten(config_.listen_address);
  host_.release_memory(config_.base_memory_bytes);
  for (auto& [id, g] : groups_) {
    if (g->window_event) net_.simulator().cancel(g->window_event);
    if (g->unit_timeout_event) net_.simulator().cancel(g->unit_timeout_event);
  }
}

size_t OutgoingProxy::source_index(const std::string& source) const {
  for (size_t i = 0; i < config_.instance_sources.size(); ++i)
    if (config_.instance_sources[i] == source) return i;
  return SIZE_MAX;
}

size_t OutgoingProxy::expected_members() const {
  if (config_.degradation == DegradationPolicy::kStrict ||
      health_.n_instances() == 0)
    return config_.group_size;
  return std::min(health_.healthy_count(), config_.group_size);
}

void OutgoingProxy::on_accept(sim::ConnPtr conn) {
  // A quarantined instance dialing in again is back on its feet; instances
  // connect outward, so this is the outgoing side's "reconnect".
  if (config_.degradation != DegradationPolicy::kStrict &&
      health_.n_instances() > 0) {
    size_t si = source_index(conn->meta().source);
    // kDead (outvoted, or written off) stays out; only instances that went
    // quiet from unreachability earn their slot back by dialing in.
    if (si != SIZE_MAX &&
        health_.state(si) == HealthTracker::State::kQuarantined) {
      health_.readmit(si);
      counters_.reconnects->inc();
      RDDR_LOG_INFO("%s: instance source '%s' re-admitted (dialed in)",
                    config_.name.c_str(), conn->meta().source.c_str());
    }
  }

  const std::string& label = conn->flow().label;
  // Join the first incomplete group with this label, else start one.
  std::shared_ptr<Group> g;
  for (auto& [id, grp] : groups_) {
    if (grp->flow_label == label && !grp->complete && !grp->ended) {
      g = grp;
      break;
    }
  }
  if (!g) {
    g = std::make_shared<Group>();
    g->id = next_group_id_++;
    g->flow_label = label;
    g->index = conn->flow().index;  // refined to member 0's at completion
    groups_[g->id] = g;
    counters_.sessions->inc();
    if (config_.tracer) {
      g->trace = config_.tracer->id_stream(config_.name)->next_trace();
      g->root_span =
          config_.tracer->begin(g->trace, 0, "flow", config_.name);
      config_.tracer->tag(g->root_span, "flow_label", label);
    }
    g->window_event = net_.simulator().schedule(
        config_.group_window, [this, g] {
          g->window_event = 0;
          on_window_expired(g);
        });
  }

  size_t idx = g->members.size();
  g->members.push_back(conn);
  g->framers.push_back(config_.plugin->make_framer(Direction::kClientToServer));
  g->queues.emplace_back();
  g->member_closed.push_back(false);
  g->participating.push_back(true);
  if (config_.tracer) {
    obs::SpanId sp =
        config_.tracer->begin(g->trace, g->root_span, "upstream", config_.name);
    config_.tracer->tag(sp, "source", conn->meta().source);
    g->member_spans.push_back(sp);
  } else {
    g->member_spans.push_back(0);
  }
  register_handlers(g, idx);

  if (g->members.size() >= config_.group_size) {
    complete_group(g);
    return;
  }
  // With health tracking a group does not wait the full window for
  // instances known to be down: all currently-healthy instances present is
  // as complete as this group will get.
  size_t expected = expected_members();
  if (config_.degradation != DegradationPolicy::kStrict &&
      expected < config_.group_size && g->members.size() >= expected) {
    size_t min_needed = config_.degradation == DegradationPolicy::kFailOpen
                            ? size_t{1}
                            : config_.min_group_size;
    if (g->members.size() >= min_needed) {
      g->degraded = true;
      counters_.degraded_sessions->inc();
      if (g->members.size() == 1) {
        g->failopen = true;
        counters_.passthrough_sessions->inc();
      }
      complete_group(g);
    }
  }
}

void OutgoingProxy::register_handlers(const std::shared_ptr<Group>& g,
                                      size_t i) {
  auto conn = g->members[i];
  conn->set_on_data([this, g, i](ByteView data) {
    if (g->ended || !g->participating[i]) return;
    if (g->failopen) {
      if (g->backend && g->backend->is_open()) g->backend->send(data);
      return;
    }
    auto& framer = *g->framers[i];
    framer.feed(data);
    if (framer.failed()) {
      if (config_.degradation == DegradationPolicy::kStrict) {
        intervene(g, strformat("instance %zu request framing error", i));
      } else if (drop_member(g, i, "request framing error")) {
        pump(g);
      }
      return;
    }
    for (auto& u : framer.take()) g->queues[i].push_back(std::move(u));
    pump(g);
  });
  conn->set_on_close([this, g, i] {
    if (g->ended || !g->participating[i]) return;
    g->member_closed[i] = true;
    if (g->failopen) {
      // The sole surviving member hung up: the flow is over.
      teardown(g);
      return;
    }
    pump(g);
  });
}

void OutgoingProxy::on_window_expired(const std::shared_ptr<Group>& g) {
  if (g->complete || g->ended) return;
  counters_.timeouts->inc();
  if (config_.degradation == DegradationPolicy::kStrict) {
    intervene(g, strformat("flow '%s': only %zu of %zu instances contacted "
                           "the backend",
                           g->flow_label.c_str(), g->members.size(),
                           config_.group_size));
    return;
  }
  size_t joined = g->members.size();
  size_t min_needed = config_.degradation == DegradationPolicy::kFailOpen
                          ? size_t{1}
                          : config_.min_group_size;
  if (joined < min_needed) {
    intervene(g, strformat("flow '%s': %zu of %zu instances is below the "
                           "degradation floor",
                           g->flow_label.c_str(), joined, config_.group_size));
    return;
  }
  // Absence is unavailability, not divergence: quarantine the no-shows and
  // serve the flow with whoever came.
  RDDR_LOG_WARN("%s: flow '%s': completing degraded group with %zu of %zu "
                "instances",
                config_.name.c_str(), g->flow_label.c_str(), joined,
                config_.group_size);
  if (health_.n_instances() > 0) {
    for (size_t si = 0; si < health_.n_instances(); ++si) {
      if (!health_.is_healthy(si)) continue;
      bool present = false;
      for (const auto& m : g->members)
        if (m->meta().source == config_.instance_sources[si]) present = true;
      if (!present) {
        counters_.instance_unreachable->inc();
        if (health_.record_failure(si)) {
          counters_.quarantines->inc();
          RDDR_LOG_WARN("%s: instance source '%s' quarantined (absent)",
                        config_.name.c_str(),
                        config_.instance_sources[si].c_str());
        }
      }
    }
  } else {
    counters_.instance_unreachable->inc(config_.group_size - joined);
  }
  g->degraded = true;
  counters_.degraded_sessions->inc();
  if (joined == 1) {
    g->failopen = true;
    counters_.passthrough_sessions->inc();
  }
  complete_group(g);
}

void OutgoingProxy::complete_group(const std::shared_ptr<Group>& g) {
  g->complete = true;
  if (g->window_event) {
    net_.simulator().cancel(g->window_event);
    g->window_event = 0;
  }
  // Pin instance order when sources are configured (filter pair slots).
  // Works for reduced groups too: present members keep their source order.
  if (!config_.instance_sources.empty()) {
    std::vector<size_t> order;
    for (const auto& want : config_.instance_sources) {
      for (size_t i = 0; i < g->members.size(); ++i) {
        if (g->members[i]->meta().source == want) {
          order.push_back(i);
          break;
        }
      }
    }
    if (order.size() == g->members.size()) {
      std::vector<sim::ConnPtr> members;
      std::vector<std::unique_ptr<StreamFramer>> framers;
      std::vector<std::deque<Unit>> queues;
      std::vector<bool> closed;
      std::vector<bool> participating;
      std::vector<obs::SpanId> spans;
      for (size_t i : order) {
        members.push_back(g->members[i]);
        framers.push_back(std::move(g->framers[i]));
        queues.push_back(std::move(g->queues[i]));
        closed.push_back(g->member_closed[i]);
        participating.push_back(g->participating[i]);
        spans.push_back(g->member_spans[i]);
      }
      // Re-register handlers with the new slot indices.
      g->members = std::move(members);
      g->framers = std::move(framers);
      g->queues = std::move(queues);
      g->member_closed = std::move(closed);
      g->participating = std::move(participating);
      g->member_spans = std::move(spans);
      for (size_t i = 0; i < g->members.size(); ++i) register_handlers(g, i);
    }
    g->pair_ok = g->members.size() >= 2 &&
                 g->members[0]->meta().source == config_.instance_sources[0] &&
                 g->members[1]->meta().source == config_.instance_sources[1];
  } else {
    g->pair_ok = g->members.size() == config_.group_size;
  }
  // Canonical call path: member 0's (the N replicated dials share the hop
  // chain; only the leaf's dialing node differs, and member 0 is the
  // config-order canonical choice).
  if (!g->members.empty() && g->members[0])
    g->index = g->members[0]->flow().index;

  sim::ConnectMeta backend_meta;
  backend_meta.source = config_.name;
  backend_meta.flow.label = g->flow_label;
  backend_meta.flow.trace_id = g->trace;
  backend_meta.flow.parent_span = g->root_span;
  // The merged forward is the same logical call: the backend sees the
  // group's index unchanged.
  backend_meta.flow.index = g->index;
  g->backend = net_.connect(config_.backend_address, backend_meta);
  if (!g->backend) {
    intervene(g, "backend unreachable: " + config_.backend_address);
    return;
  }
  // Backend responses are replicated verbatim to every instance: wrap the
  // chunk once and let all N member connections share the buffer.
  g->backend->set_on_data([g](ByteView data) {
    SharedBytes shared{data};
    for (size_t i = 0; i < g->members.size(); ++i)
      if (g->participating[i] && g->members[i]->is_open())
        g->members[i]->send(shared);
  });
  g->backend->set_on_close([this, g] {
    if (!g->ended) teardown(g);
  });
  if (g->failopen) {
    enter_failopen(g);
    return;
  }
  pump(g);
}

void OutgoingProxy::enter_failopen(const std::shared_ptr<Group>& g) {
  g->failopen = true;
  size_t sole = SIZE_MAX;
  for (size_t i = 0; i < g->members.size(); ++i)
    if (g->participating[i]) sole = i;
  if (config_.tracer)
    config_.tracer->tag(g->root_span, "failopen", strformat("slot %zu", sole));
  RDDR_LOG_WARN("%s: flow '%s' FAIL-OPEN: forwarding sole instance "
                "uncompared",
                config_.name.c_str(), g->flow_label.c_str());
  if (sole == SIZE_MAX) {
    teardown(g);
    return;
  }
  if (g->unit_timeout_event) {
    net_.simulator().cancel(g->unit_timeout_event);
    g->unit_timeout_event = 0;
  }
  // Everything already framed or buffered for the survivor goes to the
  // backend raw from here on.
  for (auto& u : g->queues[sole])
    if (g->backend && g->backend->is_open()) g->backend->send(u.data);
  g->queues[sole].clear();
  if (g->framers[sole]) {
    Bytes rest = g->framers[sole]->unconsumed();
    if (!rest.empty() && g->backend && g->backend->is_open())
      g->backend->send(rest);
  }
  if (g->member_closed[sole]) teardown(g);
}

bool OutgoingProxy::drop_member(const std::shared_ptr<Group>& g, size_t i,
                                const std::string& why) {
  if (g->ended) return false;
  if (!g->participating[i]) return true;
  RDDR_LOG_WARN("%s: flow '%s': dropping instance %zu (%s)",
                config_.name.c_str(), g->flow_label.c_str(), i, why.c_str());
  g->participating[i] = false;
  if (g->members[i] && g->members[i]->is_open()) g->members[i]->close();
  g->queues[i].clear();
  if (config_.tracer && g->member_spans[i]) {
    config_.tracer->tag(g->member_spans[i], "dropped", why);
    config_.tracer->end(g->member_spans[i]);
  }
  if (!g->degraded) {
    g->degraded = true;
    counters_.degraded_sessions->inc();
  }
  size_t si = source_index(g->members[i]->meta().source);
  if (si != SIZE_MAX && health_.record_failure(si)) {
    counters_.quarantines->inc();
    RDDR_LOG_WARN("%s: instance source '%s' quarantined", config_.name.c_str(),
                  config_.instance_sources[si].c_str());
  }
  const size_t live = g->live();
  if (live >= 2) return true;
  if (live == 1 && config_.degradation == DegradationPolicy::kFailOpen) {
    counters_.passthrough_sessions->inc();
    enter_failopen(g);
    return false;  // pump must not compare a fail-open group
  }
  if (live == 0) {
    teardown(g);
    return false;
  }
  // kQuorum with a single member left: nothing to verify against — fail
  // closed (this also tells the incoming proxy via the bus).
  intervene(g, strformat("flow '%s': quorum lost, one instance left",
                         g->flow_label.c_str()));
  return false;
}

void OutgoingProxy::pump(const std::shared_ptr<Group>& g) {
  if (!g->complete || g->busy || g->ended || g->failopen) return;
  const bool strict = config_.degradation == DegradationPolicy::kStrict;

  bool rescan = true;
  while (rescan) {
    rescan = false;
    for (size_t i = 0; i < g->queues.size(); ++i) {
      if (!g->participating[i] || !g->queues[i].empty()) continue;
      if (!g->member_closed[i]) continue;
      bool peer_has_output = false;
      for (size_t j = 0; j < g->queues.size(); ++j)
        if (g->participating[j] && !g->queues[j].empty())
          peer_has_output = true;
      if (peer_has_output) {
        if (strict) {
          intervene(g, strformat("instance %zu closed while peers kept "
                                 "sending to the backend",
                                 i));
          return;
        }
        counters_.instance_unreachable->inc();
        if (!drop_member(g, i, "closed while peers kept sending")) return;
        rescan = true;
        break;
      }
      bool all_closed = true;
      for (size_t j = 0; j < g->member_closed.size(); ++j)
        if (g->participating[j] && !g->member_closed[j]) all_closed = false;
      if (all_closed) teardown(g);
      return;
    }
  }

  bool all_ready = true;
  bool any_ready = false;
  for (size_t i = 0; i < g->queues.size(); ++i) {
    if (!g->participating[i]) continue;
    if (g->queues[i].empty()) all_ready = false;
    else any_ready = true;
  }
  if (!all_ready) {
    // Divergence-by-silence guard (§IV-D): some instance has a request
    // pending while a sibling stays quiet.
    if (any_ready && config_.unit_timeout > 0 && !g->unit_timeout_event) {
      g->unit_timeout_event =
          net_.simulator().schedule(config_.unit_timeout, [this, g] {
            g->unit_timeout_event = 0;
            if (g->ended || g->failopen) return;
            std::vector<size_t> silent;
            bool still_have = false;
            for (size_t i = 0; i < g->queues.size(); ++i) {
              if (!g->participating[i]) continue;
              if (g->queues[i].empty()) silent.push_back(i);
              else still_have = true;
            }
            if (silent.empty() || !still_have) return;
            counters_.timeouts->inc();
            if (config_.degradation == DegradationPolicy::kStrict) {
              intervene(g, "instance request timeout at the backend merge");
              return;
            }
            for (size_t i : silent) {
              counters_.instance_unreachable->inc();
              if (!drop_member(g, i, "request timeout")) return;
            }
            pump(g);
          });
    }
    return;
  }
  if (g->unit_timeout_event) {
    net_.simulator().cancel(g->unit_timeout_event);
    g->unit_timeout_event = 0;
  }
  auto units = std::make_shared<std::vector<Unit>>();
  std::vector<size_t> idxmap;  // unit position -> member slot
  size_t bytes = 0;
  for (size_t i = 0; i < g->queues.size(); ++i) {
    if (!g->participating[i]) continue;
    bytes += g->queues[i].front().data.size();
    units->push_back(std::move(g->queues[i].front()));
    g->queues[i].pop_front();
    idxmap.push_back(i);
  }
  g->busy = true;
  obs::SpanId diff_span = 0;
  const sim::Time diff_start = net_.simulator().now();
  if (config_.tracer) {
    diff_span =
        config_.tracer->begin(g->trace, g->root_span, "diff", config_.name);
    config_.tracer->tag(diff_span, "instances",
                        strformat("%zu", idxmap.size()));
  }
  double cost = config_.cpu_per_unit +
                static_cast<double>(bytes) * config_.cpu_per_byte;
  host_.run_task(cost, [this, g, units, idxmap = std::move(idxmap), diff_span,
                        diff_start] {
    g->busy = false;
    counters_.compare_ms->observe(
        static_cast<double>(net_.simulator().now() - diff_start) / 1e6);
    obs::Tracer* tracer = config_.tracer;
    if (tracer) {
      obs::SpanId dn =
          tracer->event(g->trace, diff_span, "denoise", config_.name);
      tracer->tag(dn, "filter_pair", config_.filter_pair ? "true" : "false");
    }
    if (g->ended) {
      if (tracer) tracer->end(diff_span);
      return;
    }
    counters_.units_compared->inc();
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair && g->pair_ok &&
                      idxmap.size() >= 2 && idxmap[0] == 0 && idxmap[1] == 1;
    ctx.variance = &config_.variance;
    ctx.session = &g->state;
    auto verdict = [&](const char* v) -> obs::SpanId {
      if (!tracer) return 0;
      obs::SpanId sp =
          tracer->event(g->trace, diff_span, "verdict", config_.name);
      tracer->tag(sp, "verdict", v);
      return sp;
    };
    size_t fwd = 0;  // unit position whose bytes reach the backend
    if (config_.degradation == DegradationPolicy::kStrict) {
      BatchVerdict outcome =
          engine_.compare(*config_.plugin, *units, ctx, VoteMode::kStrict);
      if (!outcome.agreed) {
        obs::SpanId sp = verdict("divergent");
        if (tracer) {
          tracer->tag(sp, "reason", outcome.reason);
          tracer->end(diff_span);
        }
        intervene(g, outcome.reason, &outcome, units.get());
        return;
      }
      verdict("agree");
    } else {
      BatchVerdict vote =
          engine_.compare(*config_.plugin, *units, ctx, VoteMode::kQuorum);
      if (!vote.agreed) {
        obs::SpanId sp = verdict("divergent");
        if (tracer) {
          tracer->tag(sp, "reason", vote.reason);
          tracer->end(diff_span);
        }
        intervene(g, vote.reason, &vote, units.get());
        return;
      }
      if (vote.outlier != SIZE_MAX) {
        size_t slot = idxmap[vote.outlier];
        counters_.quorum_outvotes->inc();
        record_divergence("outvote", vote.reason, &vote, units.get(), g.get());
        obs::SpanId sp = verdict("outvoted");
        if (tracer)
          tracer->tag(sp, "outvoted_instance", strformat("%zu", slot));
        RDDR_LOG_WARN("%s: flow '%s': instance %zu outvoted by quorum "
                      "(%zu-of-%zu agree); dropping it",
                      config_.name.c_str(), g->flow_label.c_str(), slot,
                      units->size() - 1, units->size());
        units->erase(units->begin() +
                     static_cast<std::ptrdiff_t>(vote.outlier));
        size_t si = source_index(g->members[slot]->meta().source);
        bool ok = drop_member(g, slot, "outvoted by quorum");
        // Divergence is evidence, not unavailability: no re-admission.
        if (si != SIZE_MAX) health_.mark_dead(si);
        if (!ok) {
          if (tracer) tracer->end(diff_span);
          return;
        }
      } else {
        if (health_.n_instances() > 0) {
          for (size_t i : idxmap) {
            size_t si = source_index(g->members[i]->meta().source);
            if (si != SIZE_MAX) health_.record_success(si);
          }
        }
        verdict("agree");
      }
    }
    if (tracer) tracer->end(diff_span);
    counters_.units_replicated->inc();
    if (g->backend && g->backend->is_open())
      g->backend->send((*units)[fwd].data);
    pump(g);
  });
}

void OutgoingProxy::record_divergence(const char* verdict_class,
                                      const std::string& reason,
                                      const BatchVerdict* verdict,
                                      const std::vector<Unit>* units,
                                      const Group* g) {
  DivergenceRecord rec;
  rec.time = net_.simulator().now();
  rec.proxy = config_.name;
  rec.protocol = config_.plugin->name();
  rec.verdict = verdict_class;
  rec.reason = reason;
  if (units && !units->empty()) {
    rec.unit_kind = (*units)[0].kind;
    rec.unit_data = (*units)[0].data;
  }
  if (verdict) {
    rec.region_line = verdict->region.line;
    rec.region_offset = verdict->region.offset;
    rec.region_instance = verdict->region.instance;
  }
  if (g) {
    rec.index = g->index;
    // Attribution wants the originating edge request's trace when the
    // members inherited one; the group's locally-rooted trace is the
    // fallback for unindexed flows.
    for (const auto& m : g->members)
      if (m && m->flow().trace_id) {
        rec.trace_id = m->flow().trace_id;
        break;
      }
    if (!rec.trace_id) rec.trace_id = g->trace;
  }
  // The one reporting path: the bus logs the record, dedups per callsite,
  // notifies record subscribers and — for interventions — emits the
  // cross-proxy abort event.
  bus_->report(rec);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Legacy per-proxy hook, honoured until out-of-tree callers move to the
  // bus record stream.
  if (config_.on_divergence) config_.on_divergence(rec);
#pragma GCC diagnostic pop
}

void OutgoingProxy::intervene(const std::shared_ptr<Group>& g,
                              const std::string& reason,
                              const BatchVerdict* verdict,
                              const std::vector<Unit>* units) {
  if (g->ended) return;
  counters_.divergences->inc();
  RDDR_LOG_INFO("%s: intervention on flow '%s': %s", config_.name.c_str(),
                g->flow_label.c_str(), reason.c_str());
  if (config_.tracer) config_.tracer->tag(g->root_span, "intervention", reason);
  record_divergence("intervention", reason, verdict, units, g.get());
  teardown(g);
}

void OutgoingProxy::end_group_spans(const std::shared_ptr<Group>& g) {
  if (!config_.tracer) return;
  for (obs::SpanId sp : g->member_spans) config_.tracer->end(sp);
  config_.tracer->end(g->root_span);
}

void OutgoingProxy::teardown(const std::shared_ptr<Group>& g) {
  if (g->ended) return;
  g->ended = true;
  if (g->window_event) {
    net_.simulator().cancel(g->window_event);
    g->window_event = 0;
  }
  if (g->unit_timeout_event) {
    net_.simulator().cancel(g->unit_timeout_event);
    g->unit_timeout_event = 0;
  }
  for (auto& m : g->members)
    if (m && m->is_open()) m->close();
  if (g->backend && g->backend->is_open()) g->backend->close();
  end_group_spans(g);
  groups_.erase(g->id);
}

void OutgoingProxy::abort_all_sessions(const std::string& reason) {
  // Copy out: teardown mutates the map.
  std::vector<std::shared_ptr<Group>> active;
  for (auto& [id, g] : groups_) active.push_back(g);
  for (auto& g : active) {
    counters_.divergences->inc();
    RDDR_LOG_INFO("%s: aborting flow '%s': %s", config_.name.c_str(),
                  g->flow_label.c_str(), reason.c_str());
    if (config_.tracer)
      config_.tracer->tag(g->root_span, "intervention", reason);
    teardown(g);
  }
}

void OutgoingProxy::replace_instance(size_t i, const std::string& source_node) {
  if (i < config_.instance_sources.size())
    config_.instance_sources[i] = source_node;
  health_.reset_replaced(i);
  counters_.replacements->inc();
  RDDR_LOG_INFO("%s: instance %zu replaced; now dialling in from %s",
                config_.name.c_str(), i, source_node.c_str());
}

}  // namespace rddr::core
