#include "rddr/outgoing_proxy.h"

#include <algorithm>
#include <deque>

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::core {

struct OutgoingProxy::Group {
  uint64_t id = 0;
  std::string flow_label;
  std::vector<sim::ConnPtr> members;                       // instance conns
  std::vector<std::unique_ptr<StreamFramer>> framers;      // per member
  std::vector<std::deque<Unit>> queues;
  std::vector<bool> member_closed;
  sim::ConnPtr backend;
  bool complete = false;
  bool busy = false;
  bool ended = false;
  uint64_t window_event = 0;
  uint64_t unit_timeout_event = 0;
  SessionState state;  // unused by current plugins upstream, kept uniform
};

OutgoingProxy::OutgoingProxy(sim::Network& net, sim::Host& host,
                             Config config, DivergenceBus* bus)
    : net_(net), host_(host), config_(std::move(config)), bus_(bus) {
  host_.charge_memory(config_.base_memory_bytes);
  net_.listen(config_.listen_address,
              [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

OutgoingProxy::~OutgoingProxy() {
  net_.unlisten(config_.listen_address);
  host_.release_memory(config_.base_memory_bytes);
  for (auto& [id, g] : groups_) {
    if (g->window_event) net_.simulator().cancel(g->window_event);
    if (g->unit_timeout_event) net_.simulator().cancel(g->unit_timeout_event);
  }
}

void OutgoingProxy::on_accept(sim::ConnPtr conn) {
  const std::string& label = conn->meta().flow_label;
  // Join the first incomplete group with this label, else start one.
  std::shared_ptr<Group> g;
  for (auto& [id, grp] : groups_) {
    if (grp->flow_label == label && !grp->complete && !grp->ended) {
      g = grp;
      break;
    }
  }
  if (!g) {
    g = std::make_shared<Group>();
    g->id = next_group_id_++;
    g->flow_label = label;
    groups_[g->id] = g;
    ++stats_.sessions;
    g->window_event = net_.simulator().schedule(
        config_.group_window, [this, g] {
          g->window_event = 0;
          if (!g->complete && !g->ended) {
            ++stats_.timeouts;
            intervene(g, strformat("flow '%s': only %zu of %zu instances "
                                   "contacted the backend",
                                   g->flow_label.c_str(), g->members.size(),
                                   config_.group_size));
          }
        });
  }

  size_t idx = g->members.size();
  g->members.push_back(conn);
  g->framers.push_back(config_.plugin->make_framer(Direction::kClientToServer));
  g->queues.emplace_back();
  g->member_closed.push_back(false);

  conn->set_on_data([this, g, idx](ByteView data) {
    if (g->ended) return;
    auto& framer = *g->framers[idx];
    framer.feed(data);
    if (framer.failed()) {
      intervene(g, strformat("instance %zu request framing error", idx));
      return;
    }
    for (auto& u : framer.take()) g->queues[idx].push_back(std::move(u));
    pump(g);
  });
  conn->set_on_close([this, g, idx] {
    if (g->ended) return;
    g->member_closed[idx] = true;
    bool all_closed = true;
    for (size_t i = 0; i < g->member_closed.size(); ++i)
      if (!g->member_closed[i]) all_closed = false;
    if (all_closed && g->members.size() == config_.group_size) {
      teardown(g);
      return;
    }
    pump(g);
  });

  if (g->members.size() == config_.group_size) complete_group(g);
}

void OutgoingProxy::complete_group(const std::shared_ptr<Group>& g) {
  g->complete = true;
  if (g->window_event) {
    net_.simulator().cancel(g->window_event);
    g->window_event = 0;
  }
  // Pin instance order when sources are configured (filter pair slots).
  if (!config_.instance_sources.empty()) {
    std::vector<size_t> order;
    for (const auto& want : config_.instance_sources) {
      for (size_t i = 0; i < g->members.size(); ++i) {
        if (g->members[i]->meta().source == want) {
          order.push_back(i);
          break;
        }
      }
    }
    if (order.size() == g->members.size()) {
      std::vector<sim::ConnPtr> members;
      std::vector<std::unique_ptr<StreamFramer>> framers;
      std::vector<std::deque<Unit>> queues;
      std::vector<bool> closed;
      for (size_t i : order) {
        members.push_back(g->members[i]);
        framers.push_back(std::move(g->framers[i]));
        queues.push_back(std::move(g->queues[i]));
        closed.push_back(g->member_closed[i]);
      }
      // Re-register handlers with the new slot indices.
      g->members = std::move(members);
      g->framers = std::move(framers);
      g->queues = std::move(queues);
      g->member_closed = std::move(closed);
      for (size_t i = 0; i < g->members.size(); ++i) {
        auto conn = g->members[i];
        conn->set_on_data([this, g, i](ByteView data) {
          if (g->ended) return;
          auto& framer = *g->framers[i];
          framer.feed(data);
          if (framer.failed()) {
            intervene(g, strformat("instance %zu request framing error", i));
            return;
          }
          for (auto& u : framer.take()) g->queues[i].push_back(std::move(u));
          pump(g);
        });
        conn->set_on_close([this, g, i] {
          if (g->ended) return;
          g->member_closed[i] = true;
          bool all_closed = true;
          for (bool c : g->member_closed)
            if (!c) all_closed = false;
          if (all_closed) teardown(g);
          else pump(g);
        });
      }
    }
  }

  g->backend = net_.connect(config_.backend_address,
                            {.source = config_.name,
                             .flow_label = g->flow_label});
  if (!g->backend) {
    intervene(g, "backend unreachable: " + config_.backend_address);
    return;
  }
  // Backend responses are replicated verbatim to every instance.
  g->backend->set_on_data([g](ByteView data) {
    for (auto& m : g->members)
      if (m->is_open()) m->send(data);
  });
  g->backend->set_on_close([this, g] {
    if (!g->ended) teardown(g);
  });
  pump(g);
}

void OutgoingProxy::pump(const std::shared_ptr<Group>& g) {
  if (!g->complete || g->busy || g->ended) return;
  bool all_ready = true;
  bool any_ready = false;
  for (size_t i = 0; i < g->queues.size(); ++i) {
    if (g->queues[i].empty()) {
      all_ready = false;
      if (g->member_closed[i]) {
        bool peer_has_output = false;
        for (const auto& q : g->queues)
          if (!q.empty()) peer_has_output = true;
        if (peer_has_output) {
          intervene(g, strformat("instance %zu closed while peers kept "
                                 "sending to the backend",
                                 i));
          return;
        }
      }
    } else {
      any_ready = true;
    }
  }
  if (!all_ready) {
    // Divergence-by-silence guard (§IV-D): some instance has a request
    // pending while a sibling stays quiet.
    if (any_ready && config_.unit_timeout > 0 && !g->unit_timeout_event) {
      g->unit_timeout_event =
          net_.simulator().schedule(config_.unit_timeout, [this, g] {
            g->unit_timeout_event = 0;
            if (g->ended) return;
            bool still_waiting = false;
            bool still_have = false;
            for (const auto& q : g->queues) {
              if (q.empty()) still_waiting = true;
              else still_have = true;
            }
            if (still_waiting && still_have) {
              ++stats_.timeouts;
              intervene(g, "instance request timeout at the backend merge");
            }
          });
    }
    return;
  }
  if (g->unit_timeout_event) {
    net_.simulator().cancel(g->unit_timeout_event);
    g->unit_timeout_event = 0;
  }
  auto units = std::make_shared<std::vector<Unit>>();
  size_t bytes = 0;
  for (auto& q : g->queues) {
    bytes += q.front().data.size();
    units->push_back(std::move(q.front()));
    q.pop_front();
  }
  g->busy = true;
  double cost = config_.cpu_per_unit +
                static_cast<double>(bytes) * config_.cpu_per_byte;
  host_.run_task(cost, [this, g, units] {
    g->busy = false;
    if (g->ended) return;
    ++stats_.units_compared;
    CompareContext ctx;
    ctx.filter_pair = config_.filter_pair;
    ctx.variance = &config_.variance;
    ctx.session = &g->state;
    DiffOutcome outcome = config_.plugin->compare(*units, ctx);
    if (outcome.divergent) {
      intervene(g, outcome.reason);
      return;
    }
    ++stats_.units_replicated;
    if (g->backend && g->backend->is_open())
      g->backend->send((*units)[0].data);
    pump(g);
  });
}

void OutgoingProxy::intervene(const std::shared_ptr<Group>& g,
                              const std::string& reason) {
  if (g->ended) return;
  ++stats_.divergences;
  RDDR_LOG_INFO("%s: intervention on flow '%s': %s", config_.name.c_str(),
                g->flow_label.c_str(), reason.c_str());
  if (bus_) bus_->report(config_.name, reason);
  teardown(g);
}

void OutgoingProxy::teardown(const std::shared_ptr<Group>& g) {
  if (g->ended) return;
  g->ended = true;
  if (g->window_event) {
    net_.simulator().cancel(g->window_event);
    g->window_event = 0;
  }
  if (g->unit_timeout_event) {
    net_.simulator().cancel(g->unit_timeout_event);
    g->unit_timeout_event = 0;
  }
  for (auto& m : g->members)
    if (m && m->is_open()) m->close();
  if (g->backend && g->backend->is_open()) g->backend->close();
  groups_.erase(g->id);
}

}  // namespace rddr::core
