// Umbrella header: the whole public RDDR deployment API in one include.
//
// Examples and embedders should include this (only this) and build
// deployments through NVersionDeployment::Builder — the single supported
// construction path:
//
//   #include "rddr/rddr.h"
//
//   auto rddr = rddr::core::NVersionDeployment::Builder()
//                   .listen("svc:5432")
//                   .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
//                   .plugin(std::make_shared<rddr::core::PgPlugin>())
//                   .build(net, host);
//
// Scale-out deployments swap build() for build_frontier() (see
// rddr/frontier.h for the sharding / admission-control model).
#pragma once

#include "rddr/arena.h"
#include "rddr/deployment.h"
#include "rddr/diff_engine.h"
#include "rddr/diff_simd.h"
#include "rddr/divergence.h"
#include "rddr/frontier.h"
#include "rddr/health.h"
#include "rddr/incoming_proxy.h"
#include "rddr/options.h"
#include "rddr/outgoing_proxy.h"
#include "rddr/plugin.h"
#include "rddr/plugins.h"
