// Batched N-way diff-and-denoise engine (the redesigned comparison API).
//
// The old data plane was pairwise: each compare re-canonicalised every
// unit, built the §IV-B2 noise mask from scratch, compared candidates one
// at a time, and the quorum vote then repeated ALL of that once per
// leave-one-out subset — so a single response unit was denoised up to
// N+2 times. DiffEngine replaces that call pattern with one batched call:
//
//   * each unit is canonicalised exactly once (ProtocolPlugin::
//     canonicalize) into arena-backed line views;
//   * the benign fast path scans first-divergence across ALL N responses
//     in one interleaved vectorised pass (SSE2/AVX2/scalar, runtime
//     dispatch — see rddr/diff_simd.h);
//   * on divergence, the filter-pair mask is built once and every quorum
//     subset verdict is derived from precomputed per-instance facts
//     (masked-match bits + exact-equality classes) without re-comparing;
//   * the quorum verdict, divergence reason and divergence region come
//     back from the single call.
//
// Verdicts and reason strings are bit-identical to the historical
// pairwise path (tests/determinism_test.cc keeps the fig5/trace goldens
// byte-exact through this engine), and every allocation belongs to the
// per-engine Arena, reset per batch — steady state allocates nothing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rddr/arena.h"
#include "rddr/diff_simd.h"
#include "rddr/plugin.h"

namespace rddr::core {

namespace diff {

/// Per-line noise mask (§IV-B2): enforce the first `prefix` and last
/// `suffix` bytes, ignore the middle. `active` mirrors the old
/// "optional<LineMask> present" state: inactive lines require equality.
struct LineMask {
  uint32_t prefix = 0;
  uint32_t suffix = 0;
  bool active = false;
};

/// Builds one line's mask from the filter pair's copies: common
/// prefix/suffix, clamped to disjoint regions of the shorter line, then
/// widened to alphanumeric-run boundaries (chance agreement between two
/// random tokens must not be enforced on other instances).
LineMask build_line_mask(ByteView a, ByteView b, const simd::Ops& ops);

/// Why one line failed the masked check (kNone: it passed).
enum class LineFail {
  kNone,
  kDiffers,            // unmasked line, bytes differ
  kShorterThanFrame,   // candidate shorter than prefix+suffix
  kPrefix,             // differs inside the enforced prefix
  kSuffix,             // differs inside the enforced suffix
};

struct LineCheck {
  LineFail fail = LineFail::kNone;
  size_t offset = 0;  // byte offset of the failure (best effort)
};

LineCheck masked_line_check(ByteView ref, ByteView cand, const LineMask& m,
                            const simd::Ops& ops);

/// One detected ephemeral token (§IV-B3): per-instance views of an alnum
/// run >= 10 chars that differs across ALL instances. Views alias the
/// canonical lines; materialise before the next arena reset.
struct TokenSpan {
  const ByteView* per_instance = nullptr;  // arena array, length n
  size_t n = 0;
};

/// Scans aligned canonical lines from all n units for ephemeral tokens.
ArenaVec<TokenSpan> detect_tokens(const CanonicalUnit* canon, size_t n,
                                  Arena& arena, const simd::Ops& ops);

}  // namespace diff

/// Verdict of one batched N-way compare. Field semantics match the old
/// QuorumVote exactly (strict mode: agreed == !divergent, outlier unset).
struct BatchVerdict {
  /// Every unit agreed under the plugin's rules.
  bool unanimous = false;
  /// Unanimous, or a strict majority agreed with exactly one outlier.
  bool agreed = false;
  /// Index (into `units`) of the outvoted instance; SIZE_MAX when none.
  size_t outlier = SIZE_MAX;
  /// Divergence reason (the full-group compare's reason) when the batch
  /// was not unanimous; byte-identical to the historical strings.
  std::string reason;
  /// First divergence located by the interleaved scan: canonical line,
  /// byte offset within it, and the diverging instance. `line == SIZE_MAX`
  /// when the divergence was structural (class/line-count) rather than a
  /// byte position.
  struct Region {
    size_t line = SIZE_MAX;
    size_t offset = 0;
    size_t instance = SIZE_MAX;
  } region;
};

enum class VoteMode {
  kStrict,  // unanimity or nothing (DegradationPolicy::kStrict)
  kQuorum,  // leave-one-out majority vote (kQuorum / kFailOpen)
};

/// Engine knobs, threaded through ProxyOptions::diff and
/// NVersionDeployment::Builder::diff() down to every proxy and frontier
/// shard.
struct DiffEngineOptions {
  /// Kernel selection: "auto" (CPUID), "scalar", "sse2", "avx2". The
  /// RDDR_SIMD environment variable overrides this knob process-wide.
  std::string simd = "auto";
  /// Initial arena reservation. The arena grows geometrically past this
  /// and retains its capacity across batches, so the knob only sizes the
  /// warm-up; 0 means allocate on first use.
  size_t arena_reserve_bytes = 64 << 10;
};

class DiffEngine {
 public:
  DiffEngine() : DiffEngine(DiffEngineOptions{}) {}
  explicit DiffEngine(const DiffEngineOptions& opts);

  /// The batched N-way compare: canonicalise once, scan, vote. In
  /// kStrict mode the verdict is the plugin-compare outcome (agreed ==
  /// unanimous); in kQuorum mode it is the full leave-one-out vote.
  /// Resets the arena, so views from the previous batch die here.
  BatchVerdict compare(const ProtocolPlugin& plugin,
                       const std::vector<Unit>& units,
                       const CompareContext& ctx, VoteMode mode);

  /// Token harvest + forwarded bytes, replacing on_forward_downstream on
  /// the proxy hot path. Reuses the canonical forms of the immediately
  /// preceding compare() on the same `units` (no re-canonicalisation);
  /// falls back to a fresh canonicalisation pass otherwise. Harvests only
  /// when the plugin opts in, the batch was unanimous and ctx.session is
  /// set — the exact conditions of the old call pattern.
  Bytes forward_downstream(const ProtocolPlugin& plugin,
                           const std::vector<Unit>& units,
                           const CompareContext& ctx);

  /// Core primitive under compare(): verdict over already-canonical
  /// units. Exposed for tests and microbenches; `plugin`/`units` may be
  /// null (generic class-mismatch reasons are used then). Does NOT reset
  /// the arena — the canonical views must live in arena() or outlive it.
  BatchVerdict compare_canonical(const CanonicalUnit* canon, size_t n,
                                 bool filter_pair, VoteMode mode,
                                 const ProtocolPlugin* plugin,
                                 const std::vector<Unit>* units);

  Arena& arena() { return arena_; }
  const simd::Ops& ops() const { return *ops_; }
  simd::Level level() const { return ops_->level; }

  struct Stats {
    uint64_t batches = 0;         // compare() calls
    uint64_t raw_equal = 0;       // byte-identical batches, never parsed
    uint64_t fast_path = 0;       // all-equal, settled by the N-way scan
    uint64_t mask_builds = 0;     // slow-path filter-pair mask builds
    uint64_t quorum_votes = 0;    // divergent batches put to the vote
    uint64_t tokens_harvested = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  const simd::Ops* ops_;
  Arena arena_;
  Stats stats_;
  // Canonical forms of the last compare() batch, for forward_downstream.
  CanonicalUnit* canon_ = nullptr;
  const void* canon_key_ = nullptr;  // &units identity of that batch
  size_t canon_n_ = 0;
  bool last_unanimous_ = false;
  bool last_all_equal_ = false;
};

}  // namespace rddr::core
