// Concrete protocol plugins: raw TCP lines, HTTP, pgwire, JSON-lines
// (paper §IV-B1: "It currently supports unencrypted TCP ... PostgreSQL,
// HTTP, and JSON").
#pragma once

#include <memory>

#include "rddr/plugin.h"

namespace rddr::core {

/// Line-delimited raw TCP: each '\n'-terminated line is a unit. Used by
/// the ASLR echo scenario. With a filter pair, differing character
/// regions within a line are treated as noise.
class TcpLinePlugin : public ProtocolPlugin {
 public:
  std::string name() const override { return "tcp-line"; }
  std::unique_ptr<StreamFramer> make_framer(Direction dir) const override;
  DiffOutcome compare(const std::vector<Unit>& units,
                      const CompareContext& ctx) const override;
  void canonicalize(const Unit& unit, const CompareContext& ctx, Arena& arena,
                    CanonicalUnit& out) const override;
  /// No per-instance rewriting: requests fan out as one shared buffer.
  bool rewrites_identity() const override { return true; }
};

/// HTTP/1.1. Units are whole messages. Responses are compared line-wise
/// (start line + headers + body) after known-variance header filtering and
/// content decoding; the filter pair de-noises random regions; ephemeral
/// tokens (CSRF, session ids) are harvested on forward and restored per
/// instance on the request path (paper §IV-B3).
class HttpPlugin : public ProtocolPlugin {
 public:
  struct Options {
    /// Compare JSON bodies structurally (canonicalise before diffing), so
    /// key order is not a divergence.
    bool canonicalize_json = true;
    /// §IV-B3 ephemeral-state handling (CSRF capture + per-instance
    /// restore). Off only for the ablation study.
    bool handle_ephemeral_state = true;
  };

  HttpPlugin() : opts_(Options{}) {}
  explicit HttpPlugin(Options opts) : opts_(opts) {}

  std::string name() const override { return "http"; }
  std::unique_ptr<StreamFramer> make_framer(Direction dir) const override;
  DiffOutcome compare(const std::vector<Unit>& units,
                      const CompareContext& ctx) const override;
  /// Parses the response, filters known-variance headers, decodes the
  /// content coding and canonicalises JSON — once per unit per batch.
  void canonicalize(const Unit& unit, const CompareContext& ctx, Arena& arena,
                    CanonicalUnit& out) const override;
  /// §IV-B3 token harvesting runs in the DiffEngine when enabled.
  bool harvest_tokens() const override { return opts_.handle_ephemeral_state; }
  Bytes on_forward_downstream(const std::vector<Unit>& units,
                              const CompareContext& ctx) const override;
  Bytes rewrite_for_instance(const Unit& unit, size_t instance,
                             const CompareContext& ctx) const override;
  Bytes intervention_response() const override;
  /// 503 Service Unavailable with Retry-After (front-tier load shedding).
  Bytes overload_response() const override;

  /// Comparison form of a response (exposed for tests): start line +
  /// non-ignored header lines + decoded body lines.
  std::vector<std::string> comparable_lines(const Unit& unit,
                                            const KnownVariance* kv) const;

 private:
  Options opts_;
};

/// pgwire. Units are protocol messages. BackendKeyData and configured
/// ParameterStatus values are known variance (paper §IV-B4 — implemented
/// for the PostgreSQL plugin); everything else compares exactly, with
/// filter-pair masking as fallback.
class PgPlugin : public ProtocolPlugin {
 public:
  std::string name() const override { return "pgwire"; }
  std::unique_ptr<StreamFramer> make_framer(Direction dir) const override;
  DiffOutcome compare(const std::vector<Unit>& units,
                      const CompareContext& ctx) const override;
  void canonicalize(const Unit& unit, const CompareContext& ctx, Arena& arena,
                    CanonicalUnit& out) const override;
  /// The pgwire comparability class folds in the ParameterStatus name, so
  /// a class mismatch may be a name mismatch rather than a kind mismatch.
  std::string class_mismatch_reason(const std::vector<Unit>& units,
                                    size_t i) const override;
  Bytes intervention_response() const override;
  /// ErrorResponse with SQLSTATE 53300 (too_many_connections).
  Bytes overload_response() const override;
  /// Startup packet so a replayed journal lands in a valid session.
  Bytes resync_preamble() const override;
  /// Startup and Terminate belong to the original client connection, not
  /// the replay stream.
  bool replayable(const Unit& unit) const override;
  /// pgwire requests carry no ephemeral tokens to restore (BackendKeyData
  /// flows server->client only), so the fan-out is zero-copy.
  bool rewrites_identity() const override { return true; }
};

/// Newline-delimited JSON documents over raw TCP. Units are lines;
/// comparison is structural (canonical dump) with filter-pair masking.
class JsonLinesPlugin : public ProtocolPlugin {
 public:
  std::string name() const override { return "json-lines"; }
  std::unique_ptr<StreamFramer> make_framer(Direction dir) const override;
  DiffOutcome compare(const std::vector<Unit>& units,
                      const CompareContext& ctx) const override;
  void canonicalize(const Unit& unit, const CompareContext& ctx, Arena& arena,
                    CanonicalUnit& out) const override;
  /// No per-instance rewriting: requests fan out as one shared buffer.
  bool rewrites_identity() const override { return true; }
};

}  // namespace rddr::core
