// RDDR Incoming Request Proxy (paper §IV-B).
//
// Listens on the protected service's public address. Per client
// connection it: Replicates each request unit to the N instances (after
// per-instance ephemeral-token rewriting), collects the k-th response
// unit from every instance, De-noises via the filter pair, Diffs via the
// protocol plugin, and Responds — forwarding instance 0's bytes on
// agreement, or emitting the intervention response and closing everything
// on divergence.
//
// Observability: counters live in a metrics registry (ProxyCounters;
// `stats()` is the compatibility snapshot) and, when a Tracer is
// configured, every client session becomes a trace — root "session" span,
// one "upstream" span per instance, "replicate" markers per request unit
// and "diff"/"denoise"/"verdict" spans per comparison. Upstream connects
// carry the trace context onward via ConnectMeta.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/divergence.h"
#include "rddr/health.h"
#include "rddr/options.h"
#include "rddr/plugin.h"

namespace rddr::core {

/// Recovery knobs for the incoming proxy (DESIGN.md "Recovery & resync").
/// With `enabled` and a `warm` hook set, a quarantined instance that
/// answers a reconnect probe is not readmitted directly: it enters
/// HealthTracker::State::kResyncing, `warm` copies state from a trusted
/// peer (for sqldb: snapshot_database of the lowest healthy replica),
/// request units arriving during the modelled transfer window are
/// journaled (bounded) and replayed to the instance afterwards, and only
/// then is the instance admitted to new sessions. Sessions that started
/// while it was away keep it state-consistent via catch-up shadowing (see
/// ResyncOptions::catch_up_sessions).
struct ResyncOptions {
  bool enabled = false;
  /// What one warm-up transfer did. `bytes` sizes the modeled transfer
  /// window; the rest describes the mechanism for counters/spans —
  /// "snapshot" ships the whole database, "pages" only the pages dirtied
  /// since the target's LSN, "wal" just the statement tail.
  struct WarmResult {
    int64_t bytes = -1;  ///< transferred bytes; < 0 = transfer failed
    uint64_t pages_shipped = 0;
    uint64_t wal_records = 0;
    uint64_t wal_bytes = 0;
    const char* mode = "snapshot";
  };
  /// Performs the state transfer into instance `i`. Returns
  /// `bytes >= 0` on success; a negative `bytes` means no trusted source
  /// was available or the load failed (the instance goes back to
  /// quarantine and a later probe retries).
  std::function<WarmResult(size_t instance)> warm;
  /// Virtual-time model of the copy; admission is delayed by
  /// max(min_transfer_time, bytes * transfer_seconds_per_byte) and the
  /// journal covers writes landing inside that window.
  double transfer_seconds_per_byte = 1e-9;  // ~1 GB/s
  sim::Time min_transfer_time = sim::kMillisecond;
  /// Journal capacity in units; overflow aborts the resync (back to
  /// quarantine; the next probe starts over with a fresher snapshot).
  size_t journal_max_units = 256;
  /// After readmission, client units of sessions that opened while the
  /// instance was away are shadow-forwarded to it (responses discarded),
  /// so long-lived write sessions cannot silently diverge its state.
  /// Leave off for deployments with outgoing proxies: shadow traffic
  /// would show up as extra backend flows.
  bool catch_up_sessions = true;
};

class IncomingProxy {
 public:
  struct Config : ProxyOptions {
    Config() { name = "rddr-in"; }

    /// Public address the proxy listens on. Empty => the proxy registers
    /// no listener and is fed connections via accept() (a Frontier shard).
    std::string listen_address;
    /// Addresses of the N protected-microservice instances. With
    /// `filter_pair`, instances 0 and 1 must be the identical-image pair.
    std::vector<std::string> instance_addresses;
    bool delete_tokens_after_use = true;
    /// §IV-D's suggested mitigation ("automated signature generation to
    /// defeat an attacker who repetitively triggers divergence"): when
    /// enabled, the client request that preceded a divergence is
    /// fingerprinted, and once a fingerprint has triggered
    /// `signature_threshold` divergences, matching requests are refused at
    /// the proxy without ever reaching the instances.
    bool signature_blocking = false;
    uint32_t signature_threshold = 1;
    /// Recovery behaviour for quarantined instances (see ResyncOptions).
    ResyncOptions resync;
    /// Invoked (on a fresh simulator event, never reentrantly) when an
    /// instance transitions to kDead — reconnect attempts exhausted or
    /// outvoted by the quorum. An orchestrator hooks this to replace the
    /// instance (Orchestrator::replace + replace_instance below), closing
    /// the self-healing loop.
    std::function<void(size_t instance, const std::string& reason)>
        on_instance_dead;
    /// Queue-limit hook for a front tier: fired whenever this proxy's load
    /// drops (a compare batch was dispatched, a session ended, queued
    /// units were discarded), so backpressured admission can resume. May
    /// fire mid-pump — defer real work to a fresh simulator event.
    std::function<void()> on_load_change;
  };

  IncomingProxy(sim::Network& net, sim::Host& host, Config config,
                DivergenceBus* bus = nullptr);
  ~IncomingProxy();
  IncomingProxy(const IncomingProxy&) = delete;
  IncomingProxy& operator=(const IncomingProxy&) = delete;

  /// Counter snapshot out of the metrics registry (compatibility view).
  ProxyStats stats() const { return counters_.snapshot(); }
  const Config& config() const { return config_; }

  /// Registry the proxy publishes into (the configured one, else the
  /// proxy-private fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Per-instance health view (quarantine state, for tests/operators).
  const HealthTracker& health() const { return health_; }

  /// Hands the proxy one server-half connection, exactly as if it had
  /// arrived on the listener — the direct-handoff path a Frontier uses to
  /// route an admitted connection to this shard without an extra hop.
  void accept(sim::ConnPtr conn) { on_accept(std::move(conn)); }

  /// Live client sessions (backpressure signal).
  size_t active_sessions() const { return sessions_.size(); }

  /// Response units received from instances but not yet consumed by a
  /// compare batch, summed over all sessions — the queue a saturated pool
  /// grows. The other backpressure signal.
  uint64_t pending_units() const { return queued_units_; }

  /// Aborts every active session with the intervention response (invoked
  /// via the DivergenceBus when a sibling proxy detects divergence).
  void abort_all_sessions(const std::string& reason);

  /// Swaps instance slot `i` to a freshly deployed replica at
  /// `new_address`. The slot starts quarantined with clean backoff state;
  /// the normal probe → resync → readmit path brings it into service.
  /// Any in-flight resync or probe for the old instance is abandoned.
  void replace_instance(size_t i, const std::string& new_address);

 private:
  struct Session;
  /// Per-instance resync progress (only instances in kResyncing are
  /// `active`).
  struct ResyncState {
    bool active = false;
    bool overflow = false;
    std::vector<Unit> journal;
    uint64_t complete_event = 0;  // pending transfer-done event (0 = none)
    int64_t bytes = 0;
    obs::TraceId trace = 0;
    obs::SpanId span = 0;
  };
  void on_accept(sim::ConnPtr conn);
  /// Drops `n` units from the pending count and fires on_load_change.
  void note_units_consumed(uint64_t n);
  void attach_upstream(const std::shared_ptr<Session>& s, size_t i);
  void pump(const std::shared_ptr<Session>& s);
  /// On divergence: count, report the attributed record (bus + legacy
  /// hook), respond, tear down. `verdict`/`units` carry the diff region
  /// and instance-0 unit into the record when the divergence came from a
  /// compare.
  void intervene(const std::shared_ptr<Session>& s, const std::string& reason,
                 const BatchVerdict* verdict = nullptr,
                 const std::vector<Unit>* units = nullptr);
  /// Builds the enriched DivergenceRecord — diff region, instance-0 unit,
  /// trace id and execution index of `s` — and reports it into the
  /// AttributionSink (the shared bus, or the proxy-private one).
  void record_divergence(const char* verdict_class, const std::string& reason,
                         const BatchVerdict* verdict,
                         const std::vector<Unit>* units, const Session* s);
  void teardown(const std::shared_ptr<Session>& s);
  void arm_timeout(const std::shared_ptr<Session>& s);
  /// Idle-session read timeout (Config::idle_timeout): re-arming timer
  /// that sheds sessions making no protocol progress with the plugin's
  /// overload response.
  void arm_idle(const std::shared_ptr<Session>& s);
  /// Removes instance i from the session (non-strict policies); returns
  /// false when the session could not continue and was ended.
  bool drop_instance(const std::shared_ptr<Session>& s, size_t i,
                     const std::string& why);
  void note_instance_failure(size_t i);
  void schedule_reconnect(size_t i);
  void enter_failopen(const std::shared_ptr<Session>& s, size_t live_idx);
  void end_session_spans(const std::shared_ptr<Session>& s);
  /// Marks instance i dead and (deferred, on a fresh event) fires the
  /// on_instance_dead hook.
  void notify_dead(size_t i, const std::string& reason);
  /// kQuarantined -> kResyncing: warm from a trusted peer, start the
  /// journal window and the transfer timer.
  void begin_resync(size_t i);
  /// Transfer window elapsed: replay the journal and readmit (or fail on
  /// overflow / unreachability).
  void finish_resync(size_t i);
  /// Abandons an in-progress resync: back to quarantine, backoff retry.
  void fail_resync(size_t i, const std::string& why);
  /// Buffers one client unit for an instance mid-resync (bounded).
  void journal_unit(size_t i, const Unit& u);
  /// Catch-up shadowing: forwards a unit of an established session to a
  /// readmitted instance that is not part of the session.
  void shadow_unit(const std::shared_ptr<Session>& s, size_t i, const Unit& u,
                   const CompareContext& ctx);

  sim::Network& net_;
  sim::Host& host_;
  Config config_;
  DivergenceBus* bus_;
  /// Fallback sink when constructed without a shared bus: every record
  /// still flows through one AttributionSink.
  std::unique_ptr<DivergenceBus> own_bus_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // fallback registry
  obs::MetricsRegistry* metrics_;
  ProxyCounters counters_;
  HealthTracker health_;
  /// Batched N-way diff-and-denoise data plane (configured from
  /// Config::diff): one engine, one arena, reused across every compare
  /// this proxy runs.
  DiffEngine engine_;
  /// Pending reconnect-probe event per instance (0 = none).
  std::vector<uint64_t> probe_events_;
  /// Pending deferred on_instance_dead event per instance (0 = none).
  std::vector<uint64_t> dead_events_;
  std::vector<ResyncState> resync_;
  /// Ephemeral-token table. Proxy-global (not per client connection):
  /// tokens are issued on one connection and presented on another (a
  /// browser does not pin CSRF round-trips to a socket), and values are
  /// globally unique, so a flat map is safe.
  SessionState token_state_;
  /// Divergence signatures: request fingerprint -> times it preceded a
  /// divergence (the §IV-D DoS mitigation).
  std::map<uint64_t, uint32_t> signatures_;
  /// Path quarantine: leaf call site -> interventions attributed to it
  /// (Config::path_quarantine_threshold).
  std::map<uint64_t, uint32_t> path_strikes_;
  uint64_t next_session_id_ = 1;
  uint64_t queued_units_ = 0;  // see pending_units()
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace rddr::core
