// RDDR Incoming Request Proxy (paper §IV-B).
//
// Listens on the protected service's public address. Per client
// connection it: Replicates each request unit to the N instances (after
// per-instance ephemeral-token rewriting), collects the k-th response
// unit from every instance, De-noises via the filter pair, Diffs via the
// protocol plugin, and Responds — forwarding instance 0's bytes on
// agreement, or emitting the intervention response and closing everything
// on divergence.
//
// Observability: counters live in a metrics registry (ProxyCounters;
// `stats()` is the compatibility snapshot) and, when a Tracer is
// configured, every client session becomes a trace — root "session" span,
// one "upstream" span per instance, "replicate" markers per request unit
// and "diff"/"denoise"/"verdict" spans per comparison. Upstream connects
// carry the trace context onward via ConnectMeta.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/divergence.h"
#include "rddr/health.h"
#include "rddr/options.h"
#include "rddr/plugin.h"

namespace rddr::core {

class IncomingProxy {
 public:
  struct Config : ProxyOptions {
    Config() { name = "rddr-in"; }

    std::string listen_address;
    /// Addresses of the N protected-microservice instances. With
    /// `filter_pair`, instances 0 and 1 must be the identical-image pair.
    std::vector<std::string> instance_addresses;
    bool delete_tokens_after_use = true;
    /// §IV-D's suggested mitigation ("automated signature generation to
    /// defeat an attacker who repetitively triggers divergence"): when
    /// enabled, the client request that preceded a divergence is
    /// fingerprinted, and once a fingerprint has triggered
    /// `signature_threshold` divergences, matching requests are refused at
    /// the proxy without ever reaching the instances.
    bool signature_blocking = false;
    uint32_t signature_threshold = 1;
  };

  IncomingProxy(sim::Network& net, sim::Host& host, Config config,
                DivergenceBus* bus = nullptr);
  ~IncomingProxy();
  IncomingProxy(const IncomingProxy&) = delete;
  IncomingProxy& operator=(const IncomingProxy&) = delete;

  /// Counter snapshot out of the metrics registry (compatibility view).
  ProxyStats stats() const { return counters_.snapshot(); }
  const Config& config() const { return config_; }

  /// Registry the proxy publishes into (the configured one, else the
  /// proxy-private fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Per-instance health view (quarantine state, for tests/operators).
  const HealthTracker& health() const { return health_; }

  /// Aborts every active session with the intervention response (invoked
  /// via the DivergenceBus when a sibling proxy detects divergence).
  void abort_all_sessions(const std::string& reason);

 private:
  struct Session;
  void on_accept(sim::ConnPtr conn);
  void attach_upstream(const std::shared_ptr<Session>& s, size_t i);
  void pump(const std::shared_ptr<Session>& s);
  void intervene(const std::shared_ptr<Session>& s, const std::string& reason,
                 bool report);
  void teardown(const std::shared_ptr<Session>& s);
  void arm_timeout(const std::shared_ptr<Session>& s);
  /// Removes instance i from the session (non-strict policies); returns
  /// false when the session could not continue and was ended.
  bool drop_instance(const std::shared_ptr<Session>& s, size_t i,
                     const std::string& why);
  void note_instance_failure(size_t i);
  void schedule_reconnect(size_t i);
  void enter_failopen(const std::shared_ptr<Session>& s, size_t live_idx);
  void end_session_spans(const std::shared_ptr<Session>& s);

  sim::Network& net_;
  sim::Host& host_;
  Config config_;
  DivergenceBus* bus_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // fallback registry
  obs::MetricsRegistry* metrics_;
  ProxyCounters counters_;
  HealthTracker health_;
  /// Pending reconnect-probe event per instance (0 = none).
  std::vector<uint64_t> probe_events_;
  /// Ephemeral-token table. Proxy-global (not per client connection):
  /// tokens are issued on one connection and presented on another (a
  /// browser does not pin CSRF round-trips to a socket), and values are
  /// globally unique, so a flat map is safe.
  SessionState token_state_;
  /// Divergence signatures: request fingerprint -> times it preceded a
  /// divergence (the §IV-D DoS mitigation).
  std::map<uint64_t, uint32_t> signatures_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace rddr::core
