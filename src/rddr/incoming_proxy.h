// RDDR Incoming Request Proxy (paper §IV-B).
//
// Listens on the protected service's public address. Per client
// connection it: Replicates each request unit to the N instances (after
// per-instance ephemeral-token rewriting), collects the k-th response
// unit from every instance, De-noises via the filter pair, Diffs via the
// protocol plugin, and Responds — forwarding instance 0's bytes on
// agreement, or emitting the intervention response and closing everything
// on divergence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/divergence.h"
#include "rddr/health.h"
#include "rddr/plugin.h"

namespace rddr::core {

struct ProxyStats {
  uint64_t sessions = 0;
  uint64_t units_replicated = 0;  // client->instances units
  uint64_t units_compared = 0;    // instance->client comparisons
  uint64_t divergences = 0;
  uint64_t timeouts = 0;
  uint64_t passthrough_sessions = 0;
  uint64_t signature_blocks = 0;  // requests refused by known signature
  // Availability-path counters (fault tolerance, §IV-D limitations):
  uint64_t instance_unreachable = 0;  // refused connects / lost instances
  uint64_t quarantines = 0;           // instances moved to quarantine
  uint64_t reconnects = 0;            // quarantined instances re-admitted
  uint64_t degraded_sessions = 0;     // sessions served by < N instances
  uint64_t quorum_outvotes = 0;       // divergent minorities outvoted

  ProxyStats& operator+=(const ProxyStats& o) {
    sessions += o.sessions;
    units_replicated += o.units_replicated;
    units_compared += o.units_compared;
    divergences += o.divergences;
    timeouts += o.timeouts;
    passthrough_sessions += o.passthrough_sessions;
    signature_blocks += o.signature_blocks;
    instance_unreachable += o.instance_unreachable;
    quarantines += o.quarantines;
    reconnects += o.reconnects;
    degraded_sessions += o.degraded_sessions;
    quorum_outvotes += o.quorum_outvotes;
    return *this;
  }
};

class IncomingProxy {
 public:
  struct Config {
    std::string name = "rddr-in";
    std::string listen_address;
    /// Addresses of the N protected-microservice instances. With
    /// `filter_pair`, instances 0 and 1 must be the identical-image pair.
    std::vector<std::string> instance_addresses;
    std::shared_ptr<ProtocolPlugin> plugin;
    KnownVariance variance;
    bool filter_pair = false;
    bool delete_tokens_after_use = true;
    /// 0 disables the per-unit instance timeout — reproducing the paper's
    /// §IV-D DoS limitation; a positive value is the suggested mitigation.
    sim::Time instance_timeout = 0;
    /// §IV-D's other suggested mitigation ("automated signature
    /// generation to defeat an attacker who repetitively triggers
    /// divergence"): when enabled, the client request that preceded a
    /// divergence is fingerprinted, and once a fingerprint has triggered
    /// `signature_threshold` divergences, matching requests are refused at
    /// the proxy without ever reaching the instances.
    bool signature_blocking = false;
    uint32_t signature_threshold = 1;
    /// Graceful degradation under instance failure (§IV-D): kStrict is
    /// the paper's unanimity; kQuorum keeps serving on a majority of
    /// healthy instances; kFailOpen additionally passes through (with
    /// alert counters) when fewer than 2 healthy instances remain.
    DegradationPolicy policy = DegradationPolicy::kStrict;
    /// Quarantine threshold and reconnect backoff (ignored under kStrict).
    /// `health.n_instances` is filled from `instance_addresses`.
    HealthTracker::Options health;
    /// CPU model for the de-noise+diff work.
    double cpu_per_unit = 15e-6;
    double cpu_per_byte = 2e-9;
    int64_t base_memory_bytes = 24LL << 20;
  };

  IncomingProxy(sim::Network& net, sim::Host& host, Config config,
                DivergenceBus* bus = nullptr);
  ~IncomingProxy();
  IncomingProxy(const IncomingProxy&) = delete;
  IncomingProxy& operator=(const IncomingProxy&) = delete;

  const ProxyStats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  /// Per-instance health view (quarantine state, for tests/operators).
  const HealthTracker& health() const { return health_; }

  /// Aborts every active session with the intervention response (invoked
  /// via the DivergenceBus when a sibling proxy detects divergence).
  void abort_all_sessions(const std::string& reason);

 private:
  struct Session;
  void on_accept(sim::ConnPtr conn);
  void attach_upstream(const std::shared_ptr<Session>& s, size_t i);
  void pump(const std::shared_ptr<Session>& s);
  void intervene(const std::shared_ptr<Session>& s, const std::string& reason,
                 bool report);
  void teardown(const std::shared_ptr<Session>& s);
  void arm_timeout(const std::shared_ptr<Session>& s);
  /// Removes instance i from the session (non-strict policies); returns
  /// false when the session could not continue and was ended.
  bool drop_instance(const std::shared_ptr<Session>& s, size_t i,
                     const std::string& why);
  void note_instance_failure(size_t i);
  void schedule_reconnect(size_t i);
  void enter_failopen(const std::shared_ptr<Session>& s, size_t live_idx);

  sim::Network& net_;
  sim::Host& host_;
  Config config_;
  DivergenceBus* bus_;
  ProxyStats stats_;
  HealthTracker health_;
  /// Pending reconnect-probe event per instance (0 = none).
  std::vector<uint64_t> probe_events_;
  /// Ephemeral-token table. Proxy-global (not per client connection):
  /// tokens are issued on one connection and presented on another (a
  /// browser does not pin CSRF round-trips to a socket), and values are
  /// globally unique, so a flat map is safe.
  SessionState token_state_;
  /// Divergence signatures: request fingerprint -> times it preceded a
  /// divergence (the §IV-D DoS mitigation).
  std::map<uint64_t, uint32_t> signatures_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace rddr::core
