#include "rddr/frontier.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "netsim/parallel.h"

namespace rddr::core {

uint64_t hash_key(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Raw FNV-1a clusters badly on short structured keys ("shard-1#42",
  // "open-client-7"): ring arcs collapse and one shard can end up with no
  // keyspace at all. A 64-bit avalanche finalizer fixes the spread.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// ---- ConsistentHash ----

ConsistentHash::ConsistentHash(size_t shards, size_t vnodes_per_shard)
    : nshards_(shards), enabled_(shards, true) {
  ring_.reserve(shards * vnodes_per_shard);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t v = 0; v < vnodes_per_shard; ++v) {
      ring_.emplace_back(
          hash_key("shard-" + std::to_string(s) + "#" + std::to_string(v)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ConsistentHash::route(const std::string& key) const {
  if (ring_.empty()) return nshards_;
  uint64_t h = hash_key(key);
  // First ring point clockwise from h (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, size_t>& e, uint64_t v) {
        return e.first < v;
      });
  size_t start = static_cast<size_t>(it - ring_.begin()) % ring_.size();
  for (size_t walked = 0; walked < ring_.size(); ++walked) {
    size_t shard = ring_[(start + walked) % ring_.size()].second;
    if (enabled_[shard]) return shard;
  }
  return nshards_;  // everything disabled
}

void ConsistentHash::set_shard_enabled(size_t shard, bool enabled) {
  enabled_.at(shard) = enabled;
}

// ---- Frontier ----

Frontier::Frontier(sim::Network& net, std::vector<sim::Host*> shard_hosts,
                   Options options)
    : net_(net),
      opts_(std::move(options)),
      router_(opts_.shards.size()),
      admin_enabled_(opts_.shards.size(), true) {
  if (opts_.metrics) {
    metrics_ = opts_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  counters_.bind(*metrics_, opts_.name);
  offered_ = metrics_->counter(opts_.name + ".offered");
  shed_deadline_ = metrics_->counter(opts_.name + ".shed_deadline");
  shed_queue_full_ = metrics_->counter(opts_.name + ".shed_queue_full");
  shed_unroutable_ = metrics_->counter(opts_.name + ".shed_unroutable");

  sim::Time now = net_.simulator().now();
  shard_state_.resize(opts_.shards.size());
  for (size_t k = 0; k < opts_.shards.size(); ++k) {
    NVersionDeployment::Options shard_opts = opts_.shards[k];
    // Shards never listen themselves: the frontier owns the only public
    // listener and hands connections over directly.
    shard_opts.incoming.listen_address.clear();
    shard_opts.incoming.on_load_change = [this, k] { schedule_drain(k); };
    if (!shard_opts.incoming.metrics) shard_opts.incoming.metrics = metrics_;
    if (!shard_opts.incoming.tracer) shard_opts.incoming.tracer = opts_.tracer;
    sim::Host* host = shard_hosts.empty()
                          ? nullptr
                          : shard_hosts[k % shard_hosts.size()];
    shards_.push_back(std::make_unique<NVersionDeployment>(
        net_, *host, std::move(shard_opts)));

    auto& st = shard_state_[k];
    st.tokens = opts_.admission.burst;  // buckets start full
    st.last_refill = now;
    const std::string p = opts_.name + ".s" + std::to_string(k);
    st.active_sessions = metrics_->gauge(p + ".active_sessions");
    st.admission_queue = metrics_->gauge(p + ".admission_queue");
  }

  if (opts_.admission.accept_queue > 0) {
    net_.set_accept_queue_depth(opts_.listen_address,
                                opts_.admission.accept_queue);
  }
  net_.listen(opts_.listen_address,
              [this](sim::ConnPtr c) { on_accept(std::move(c)); });
  if (!opts_.shard_islands.empty()) {
    // Islands mode: decide the shard at dial time so the server half of
    // the connection — and with it on_accept, the admission queue, and
    // the handoff — live on the shard's island. on_accept trusts the
    // recorded hint, so the decision is made exactly once.
    net_.set_island_router(
        opts_.listen_address,
        [this](const sim::ConnectMeta& meta, uint32_t& hint) -> IslandId {
          size_t k = route_for_key(meta.source.empty() ? "anon"
                                                       : meta.source);
          hint = static_cast<uint32_t>(k);
          return k < opts_.shard_islands.size() ? opts_.shard_islands[k] : 0;
        });
  }
}

Frontier::~Frontier() {
  net_.unlisten(opts_.listen_address);
  net_.set_accept_queue_depth(opts_.listen_address, 0);
  for (auto& st : shard_state_) {
    if (st.token_wake_event) net_.simulator().cancel(st.token_wake_event);
    for (auto& w : st.queue) {
      if (w.shed_event) net_.simulator().cancel(w.shed_event);
      if (w.conn && w.conn->is_open()) w.conn->close();
    }
  }
}

size_t Frontier::route_for_key(const std::string& key) const {
  for (size_t k = 0; k < shards_.size(); ++k)
    router_.set_shard_enabled(k, shard_available(k));
  return router_.route(key);
}

size_t Frontier::route_of(const std::string& key) const {
  return route_for_key(key);
}

void Frontier::set_shard_enabled(size_t k, bool enabled) {
  admin_enabled_.at(k) = enabled;
}

bool Frontier::shard_available(size_t k) const {
  return admin_enabled_.at(k) &&
         shards_.at(k)->incoming().health().healthy_count() > 0;
}

ProxyStats Frontier::aggregate_stats() const {
  ProxyStats total = counters_.snapshot();
  for (const auto& s : shards_) total += s->aggregate_stats();
  return total;
}

uint64_t Frontier::divergences() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->divergences();
  return n;
}

void Frontier::on_accept(sim::ConnPtr conn) {
  offered_->inc();
  size_t k;
  if (conn->route_hint() != UINT32_MAX) {
    // Islands mode: the dial-time router already picked the shard (and
    // this callback is running on that shard's island) — re-deciding here
    // could disagree with where the connection landed.
    k = conn->route_hint();
  } else {
    const std::string& src = conn->meta().source;
    std::string key = src.empty() ? "conn-" + std::to_string(conn->id()) : src;
    k = route_of(key);
  }
  Waiting w;
  w.conn = std::move(conn);
  w.enqueued = net_.simulator().now();
  // The connection id is unique and already known on this island; a
  // frontier-global counter would race across shard islands.
  w.seq = w.conn->id();
  if (k >= shards_.size()) {
    shed(w, "unroutable", shed_unroutable_, -1);
    return;
  }
  auto& st = shard_state_[k];
  if (opts_.admission.queue_limit > 0 &&
      st.queue.size() >= opts_.admission.queue_limit) {
    shed(w, "queue_full", shed_queue_full_, static_cast<int>(k));
    return;
  }
  uint64_t seq = w.seq;
  w.shed_event =
      net_.simulator().schedule(opts_.admission.shed_deadline, [this, k, seq] {
        auto& q = shard_state_[k].queue;
        for (auto it = q.begin(); it != q.end(); ++it) {
          if (it->seq != seq) continue;
          Waiting doomed = std::move(*it);
          q.erase(it);
          doomed.shed_event = 0;
          shed(doomed, "deadline", shed_deadline_, static_cast<int>(k));
          update_gauges(k);
          return;
        }
      });
  st.queue.push_back(std::move(w));
  update_gauges(k);
  drain(k);
}

bool Frontier::try_admit(size_t k) {
  refill(k);
  const auto& adm = opts_.admission;
  auto& st = shard_state_[k];
  if (adm.rate_per_s > 0 && st.tokens < 1.0) return false;
  auto& in = shards_[k]->incoming();
  if (adm.max_sessions > 0 && in.active_sessions() >= adm.max_sessions)
    return false;
  if (adm.queued_units_watermark > 0 &&
      in.pending_units() >= adm.queued_units_watermark)
    return false;
  if (adm.rate_per_s > 0) st.tokens -= 1.0;
  return true;
}

void Frontier::admit(size_t k, Waiting w) {
  counters_.admitted->inc();
  double waited_ms =
      static_cast<double>(net_.simulator().now() - w.enqueued) / 1e6;
  counters_.queued_ms->observe(waited_ms);
  shards_[k]->incoming().accept(std::move(w.conn));
}

void Frontier::shed(Waiting& w, const std::string& reason,
                    obs::Counter* reason_ctr, int shard) {
  counters_.shed->inc();
  if (reason_ctr) reason_ctr->inc();
  if (opts_.tracer) {
    // Stream per shard: sheds for different shards run on different
    // islands, and a shared stream's draw order would depend on how the
    // islands interleave.
    const std::string stream = shard >= 0
                                   ? opts_.name + ".shed.s" +
                                         std::to_string(shard)
                                   : opts_.name + ".shed";
    obs::TraceId t = w.conn && w.conn->flow().trace_id
                         ? w.conn->flow().trace_id
                         : opts_.tracer->id_stream(stream)->next_trace();
    obs::SpanId parent = w.conn ? w.conn->flow().parent_span : 0;
    obs::SpanId span = opts_.tracer->event(t, parent, "shed", opts_.name);
    opts_.tracer->tag(span, "reason", reason);
    if (shard >= 0) opts_.tracer->tag(span, "shard", std::to_string(shard));
  }
  if (w.conn && w.conn->is_open()) {
    if (opts_.plugin) {
      Bytes resp = opts_.plugin->overload_response();
      if (!resp.empty()) w.conn->send(resp);
    }
    w.conn->close();
  }
  RDDR_LOG_DEBUG("%s: shed connection (%s)", opts_.name.c_str(),
                 reason.c_str());
}

void Frontier::refill(size_t k) {
  auto& st = shard_state_[k];
  sim::Time now = net_.simulator().now();
  if (opts_.admission.rate_per_s > 0 && now > st.last_refill) {
    double secs = static_cast<double>(now - st.last_refill) / 1e9;
    st.tokens = std::min(opts_.admission.burst,
                         st.tokens + secs * opts_.admission.rate_per_s);
  }
  st.last_refill = now;
}

void Frontier::drain(size_t k) {
  auto& st = shard_state_[k];
  while (!st.queue.empty() && try_admit(k)) {
    Waiting w = std::move(st.queue.front());
    st.queue.pop_front();
    if (w.shed_event) {
      net_.simulator().cancel(w.shed_event);
      w.shed_event = 0;
    }
    admit(k, std::move(w));
  }
  update_gauges(k);
  // Still waiting purely on tokens? Wake exactly when the next one lands.
  if (!st.queue.empty() && opts_.admission.rate_per_s > 0 &&
      st.tokens < 1.0 && st.token_wake_event == 0) {
    st.token_wake_event =
        net_.simulator().schedule(time_to_next_token(st), [this, k] {
          shard_state_[k].token_wake_event = 0;
          drain(k);
        });
  }
}

void Frontier::schedule_drain(size_t k) {
  // on_load_change may fire mid-pump; coalesce and defer to a fresh event.
  auto& st = shard_state_[k];
  update_gauges(k);
  if (st.queue.empty() || st.drain_scheduled) return;
  st.drain_scheduled = true;
  net_.simulator().schedule(0, [this, k] {
    shard_state_[k].drain_scheduled = false;
    drain(k);
  });
}

void Frontier::update_gauges(size_t k) {
  auto& st = shard_state_[k];
  st.active_sessions->set(
      static_cast<double>(shards_[k]->incoming().active_sessions()));
  st.admission_queue->set(static_cast<double>(st.queue.size()));
}

sim::Time Frontier::time_to_next_token(const ShardState& st) const {
  double needed = 1.0 - st.tokens;
  double secs = needed / opts_.admission.rate_per_s;
  auto dt = static_cast<sim::Time>(std::ceil(secs * 1e9));
  return dt > 0 ? dt : 1;
}

// ---- Builder::build_frontier ----

namespace {
/// "backend:5432" -> "backend-s2:5432": per-shard backend listener so S
/// outgoing proxies don't fight over one address.
std::string shard_suffixed(const std::string& address, size_t k) {
  size_t colon = address.find(':');
  std::string suffix = "-s" + std::to_string(k);
  if (colon == std::string::npos) return address + suffix;
  return address.substr(0, colon) + suffix + address.substr(colon);
}
}  // namespace

std::unique_ptr<Frontier> NVersionDeployment::Builder::build_frontier(
    sim::Network& net, sim::Host& proxy_host) const {
  return build_frontier(net, std::vector<sim::Host*>{&proxy_host});
}

std::unique_ptr<Frontier> NVersionDeployment::Builder::build_frontier(
    sim::Network& net, const std::vector<sim::Host*>& shard_hosts) const {
  Frontier::Options fo;
  fo.listen_address = incoming_.listen_address;
  fo.name = incoming_.name;
  fo.admission = incoming_.admission;
  fo.plugin = incoming_.plugin;
  fo.metrics = incoming_.metrics;
  fo.tracer = incoming_.tracer;
  size_t S = shard_versions_.empty() ? std::max<size_t>(1, incoming_.shards)
                                     : shard_versions_.size();
  if (islands_ > 0) {
    // Lookahead tracks the network's minimum link latency, recomputed at
    // every barrier so runtime latency faults shrink (but never zero) the
    // window.
    sim::ParallelOptions popts;
    popts.lookahead_provider = [&net] { return net.min_link_latency(); };
    net.simulator().configure_islands(islands_, popts);
    // Canonical trace export for ANY configured count (1 included), so
    // the 1-island oracle emits the same bytes as the parallel runs.
    if (fo.tracer) fo.tracer->set_island_export(true);
  }
  for (size_t k = 0; k < S; ++k) {
    Builder per = *this;
    per.incoming_.name = incoming_.name + "-s" + std::to_string(k);
    per.incoming_.listen_address.clear();
    if (!shard_versions_.empty())
      per.incoming_.instance_addresses = shard_versions_[k];
    // Each shard's pool dials its own backend listener; scenarios with
    // per-shard pools point instance k's backend address at the suffixed
    // name (shared-pool deployments usually have no backend() at all).
    for (auto& b : per.backends_)
      b.cfg.listen_address = shard_suffixed(b.cfg.listen_address, k);
    if (islands_ > 0) {
      // Shards sharing a host share its island (the host's completion
      // events run there); island 0 is reserved for the public listener
      // and the driver, so shards spread over 1..islands-1.
      const size_t h = shard_hosts.empty() ? 0 : k % shard_hosts.size();
      const IslandId isl =
          islands_ == 1 ? 0
                        : static_cast<IslandId>(1 + h % (islands_ - 1));
      fo.shard_islands.push_back(isl);
      if (h < shard_hosts.size()) shard_hosts[h]->pin_island(isl);
      for (const auto& a : per.incoming_.instance_addresses)
        net.set_node_island(sim::Network::node_of(a), isl);
      for (const auto& b : per.backends_)
        net.set_node_island(sim::Network::node_of(b.cfg.listen_address), isl);
    }
    fo.shards.push_back(per.options());
  }
  return std::make_unique<Frontier>(net, shard_hosts, std::move(fo));
}

}  // namespace rddr::core
