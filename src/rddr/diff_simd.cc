#include "rddr/diff_simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define RDDR_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rddr::core::simd {

namespace {

inline bool is_alnum(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

// ---------------- scalar ----------------

size_t mismatch_scalar(const char* a, const char* b, size_t n) {
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t suffix_len_scalar(const char* a_end, const char* b_end, size_t n) {
  size_t i = 0;
  while (i < n && a_end[-1 - static_cast<ptrdiff_t>(i)] ==
                      b_end[-1 - static_cast<ptrdiff_t>(i)])
    ++i;
  return i;
}

size_t find_non_alnum_scalar(const char* p, size_t n) {
  size_t i = 0;
  while (i < n && is_alnum(static_cast<unsigned char>(p[i]))) ++i;
  return i;
}

NwayHit nway_mismatch_scalar(const char* ref, const char* const* cands,
                             size_t k, size_t n) {
  for (size_t off = 0; off < n; ++off) {
    char r = ref[off];
    for (size_t j = 0; j < k; ++j)
      if (cands[j][off] != r) return {off, j};
  }
  return {n, SIZE_MAX};
}

#if RDDR_SIMD_X86

// ---------------- SSE2 (x86-64 baseline) ----------------

inline uint32_t neq_mask16(const char* a, const char* b) {
  __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  return ~static_cast<uint32_t>(
             _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))) &
         0xffffu;
}

size_t mismatch_sse2(const char* a, const char* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint32_t bad = neq_mask16(a + i, b + i);
    if (bad) return i + static_cast<size_t>(__builtin_ctz(bad));
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t suffix_len_sse2(const char* a_end, const char* b_end, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint32_t bad = neq_mask16(a_end - i - 16, b_end - i - 16);
    if (bad)
      return i + 15 - static_cast<size_t>(31 - __builtin_clz(bad));
  }
  while (i < n && a_end[-1 - static_cast<ptrdiff_t>(i)] ==
                      b_end[-1 - static_cast<ptrdiff_t>(i)])
    ++i;
  return i;
}

/// Bitmask of non-alnum bytes within one 16-byte lane. Thresholds are all
/// < 0x80 and bytes >= 0x80 read as negative, so signed compares classify
/// exactly like the scalar [0-9A-Za-z] test.
inline uint32_t non_alnum_mask16(const char* p) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i digit = _mm_and_si128(_mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1)),
                                _mm_cmpgt_epi8(_mm_set1_epi8('9' + 1), v));
  __m128i lower = _mm_or_si128(v, _mm_set1_epi8(0x20));
  __m128i alpha =
      _mm_and_si128(_mm_cmpgt_epi8(lower, _mm_set1_epi8('a' - 1)),
                    _mm_cmpgt_epi8(_mm_set1_epi8('z' + 1), lower));
  uint32_t alnum = static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_or_si128(digit, alpha)));
  return ~alnum & 0xffffu;
}

size_t find_non_alnum_sse2(const char* p, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint32_t bad = non_alnum_mask16(p + i);
    if (bad) return i + static_cast<size_t>(__builtin_ctz(bad));
  }
  while (i < n && is_alnum(static_cast<unsigned char>(p[i]))) ++i;
  return i;
}

NwayHit nway_mismatch_sse2(const char* ref, const char* const* cands,
                           size_t k, size_t n) {
  size_t off = 0;
  for (; off + 16 <= n; off += 16) {
    __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + off));
    NwayHit best{n, SIZE_MAX};
    for (size_t j = 0; j < k; ++j) {
      __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cands[j] + off));
      uint32_t bad = ~static_cast<uint32_t>(
                         _mm_movemask_epi8(_mm_cmpeq_epi8(r, c))) &
                     0xffffu;
      if (bad) {
        size_t at = off + static_cast<size_t>(__builtin_ctz(bad));
        if (at < best.offset) best = {at, j};
      }
    }
    if (best.instance != SIZE_MAX) return best;
  }
  for (; off < n; ++off) {
    char r = ref[off];
    for (size_t j = 0; j < k; ++j)
      if (cands[j][off] != r) return {off, j};
  }
  return {n, SIZE_MAX};
}

// ---------------- AVX2 (function-level target, CPUID-gated) ----------------

__attribute__((target("avx2"))) inline uint32_t neq_mask32(const char* a,
                                                           const char* b) {
  __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return ~static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
}

// NOTE on the shape of every *_avx2 function below: the short-input
// delegate comes FIRST (before any 256-bit register is touched), and the
// tail delegate is preceded by an explicit _mm256_zeroupper(). The sse2
// helpers are legacy-SSE encoded (they must run on AVX-less CPUs), so
// calling them with dirty ymm upper halves makes every SSE instruction
// pay the AVX->SSE transition penalty — measured at ~4x on the token
// detection hot path before these guards existed. GCC emits vzeroupper
// at returns but NOT before calls to these local helpers.
__attribute__((target("avx2"))) size_t mismatch_avx2(const char* a,
                                                     const char* b, size_t n) {
  if (n < 32) return mismatch_sse2(a, b, n);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint32_t bad = neq_mask32(a + i, b + i);
    if (bad) return i + static_cast<size_t>(__builtin_ctz(bad));
  }
  _mm256_zeroupper();
  return i + mismatch_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) size_t suffix_len_avx2(const char* a_end,
                                                       const char* b_end,
                                                       size_t n) {
  if (n < 32) return suffix_len_sse2(a_end, b_end, n);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint32_t bad = neq_mask32(a_end - i - 32, b_end - i - 32);
    if (bad)
      return i + 31 - static_cast<size_t>(31 - __builtin_clz(bad));
  }
  _mm256_zeroupper();
  return i + suffix_len_sse2(a_end - i, b_end - i, n - i);
}

__attribute__((target("avx2"))) inline uint32_t non_alnum_mask32(
    const char* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i digit =
      _mm256_and_si256(_mm256_cmpgt_epi8(v, _mm256_set1_epi8('0' - 1)),
                       _mm256_cmpgt_epi8(_mm256_set1_epi8('9' + 1), v));
  __m256i lower = _mm256_or_si256(v, _mm256_set1_epi8(0x20));
  __m256i alpha =
      _mm256_and_si256(_mm256_cmpgt_epi8(lower, _mm256_set1_epi8('a' - 1)),
                       _mm256_cmpgt_epi8(_mm256_set1_epi8('z' + 1), lower));
  return ~static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_or_si256(digit, alpha)));
}

__attribute__((target("avx2"))) size_t find_non_alnum_avx2(const char* p,
                                                           size_t n) {
  if (n < 32) return find_non_alnum_sse2(p, n);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint32_t bad = non_alnum_mask32(p + i);
    if (bad) return i + static_cast<size_t>(__builtin_ctz(bad));
  }
  _mm256_zeroupper();
  return i + find_non_alnum_sse2(p + i, n - i);
}

__attribute__((target("avx2"))) NwayHit nway_mismatch_avx2(
    const char* ref, const char* const* cands, size_t k, size_t n) {
  if (n < 32) return nway_mismatch_sse2(ref, cands, k, n);
  size_t off = 0;
  for (; off + 32 <= n; off += 32) {
    __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ref + off));
    NwayHit best{n, SIZE_MAX};
    for (size_t j = 0; j < k; ++j) {
      __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cands[j] + off));
      uint32_t bad = ~static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(r, c)));
      if (bad) {
        size_t at = off + static_cast<size_t>(__builtin_ctz(bad));
        if (at < best.offset) best = {at, j};
      }
    }
    if (best.instance != SIZE_MAX) return best;
  }
  if (off < n) {
    _mm256_zeroupper();
    NwayHit tail{n, SIZE_MAX};
    for (size_t j = 0; j < k; ++j) {
      size_t at =
          off + mismatch_sse2(ref + off, cands[j] + off, n - off);
      if (at < tail.offset) tail = {at, j};
    }
    if (tail.instance != SIZE_MAX && tail.offset < n) return tail;
  }
  return {n, SIZE_MAX};
}

#endif  // RDDR_SIMD_X86

const Ops kScalarOps = {Level::kScalar, mismatch_scalar, suffix_len_scalar,
                        find_non_alnum_scalar, nway_mismatch_scalar};
#if RDDR_SIMD_X86
const Ops kSse2Ops = {Level::kSse2, mismatch_sse2, suffix_len_sse2,
                      find_non_alnum_sse2, nway_mismatch_sse2};
const Ops kAvx2Ops = {Level::kAvx2, mismatch_avx2, suffix_len_avx2,
                      find_non_alnum_avx2, nway_mismatch_avx2};
#endif

Level parse_level_name(const char* s) {
  if (std::strcmp(s, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(s, "sse2") == 0) return Level::kSse2;
  if (std::strcmp(s, "avx2") == 0) return Level::kAvx2;
  return best_supported();  // "auto" and unknown spellings
}

}  // namespace

const char* level_name(Level l) {
  switch (l) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

Level best_supported() {
#if RDDR_SIMD_X86
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level resolve_level(const std::string& knob) {
  Level want = parse_level_name(knob.c_str());
  if (const char* env = std::getenv("RDDR_SIMD"))
    want = parse_level_name(env);
  Level best = best_supported();
  return static_cast<int>(want) > static_cast<int>(best) ? best : want;
}

const Ops& ops(Level l) {
#if RDDR_SIMD_X86
  switch (l) {
    case Level::kScalar: return kScalarOps;
    case Level::kSse2: return kSse2Ops;
    case Level::kAvx2: return kAvx2Ops;
  }
#endif
  (void)l;
  return kScalarOps;
}

const Ops& active_ops() {
  static const Ops& table = ops(resolve_level("auto"));
  return table;
}

}  // namespace rddr::core::simd
