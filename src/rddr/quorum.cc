#include "rddr/quorum.h"

namespace rddr::core {

QuorumVote quorum_vote(const ProtocolPlugin& plugin,
                       const std::vector<Unit>& units,
                       const CompareContext& ctx) {
  QuorumVote vote;
  DiffOutcome full = plugin.compare(units, ctx);
  if (!full.divergent) {
    vote.unanimous = true;
    vote.agreed = true;
    return vote;
  }
  vote.reason = full.reason;
  if (units.size() < 3) return vote;  // no majority possible
  size_t candidate = SIZE_MAX;
  for (size_t o = 0; o < units.size(); ++o) {
    std::vector<Unit> rest;
    rest.reserve(units.size() - 1);
    for (size_t i = 0; i < units.size(); ++i)
      if (i != o) rest.push_back(units[i]);
    CompareContext sub = ctx;
    // The de-noise mask is built from units 0 and 1; excluding either
    // breaks the pair, so fall back to exact comparison for that subset.
    sub.filter_pair = ctx.filter_pair && o > 1;
    if (!plugin.compare(rest, sub).divergent) {
      if (candidate != SIZE_MAX) return vote;  // ambiguous: several outliers
      candidate = o;
    }
  }
  if (candidate == SIZE_MAX) return vote;  // nobody's removal restores accord
  vote.agreed = true;
  vote.outlier = candidate;
  return vote;
}

}  // namespace rddr::core
