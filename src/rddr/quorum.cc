// Deprecated wrapper: the leave-one-out vote is now a by-product of one
// batched DiffEngine compare (the engine derives every subset verdict
// from precomputed per-instance facts instead of re-running the plugin
// compare N+1 times).
#include "rddr/quorum.h"

#include "rddr/diff_engine.h"

namespace rddr::core {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

QuorumVote quorum_vote(const ProtocolPlugin& plugin,
                       const std::vector<Unit>& units,
                       const CompareContext& ctx) {
  thread_local DiffEngine engine;
  BatchVerdict v = engine.compare(plugin, units, ctx, VoteMode::kQuorum);
  QuorumVote vote;
  vote.unanimous = v.unanimous;
  vote.agreed = v.agreed;
  vote.outlier = v.outlier;
  vote.reason = std::move(v.reason);
  return vote;
}

#pragma GCC diagnostic pop

}  // namespace rddr::core
