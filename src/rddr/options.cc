#include "rddr/options.h"

namespace rddr::core {

void ProxyCounters::bind(obs::MetricsRegistry& reg,
                         const std::string& prefix) {
  sessions = reg.counter(prefix + ".sessions");
  units_replicated = reg.counter(prefix + ".units_replicated");
  units_compared = reg.counter(prefix + ".units_compared");
  divergences = reg.counter(prefix + ".divergences");
  timeouts = reg.counter(prefix + ".timeouts");
  idle_sheds = reg.counter(prefix + ".idle_sheds");
  passthrough_sessions = reg.counter(prefix + ".passthrough_sessions");
  signature_blocks = reg.counter(prefix + ".signature_blocks");
  path_blocks = reg.counter(prefix + ".path_blocks");
  instance_unreachable = reg.counter(prefix + ".instance_unreachable");
  quarantines = reg.counter(prefix + ".quarantines");
  reconnects = reg.counter(prefix + ".reconnects");
  degraded_sessions = reg.counter(prefix + ".degraded_sessions");
  quorum_outvotes = reg.counter(prefix + ".quorum_outvotes");
  resyncs = reg.counter(prefix + ".resyncs");
  replacements = reg.counter(prefix + ".replacements");
  journal_replayed_requests = reg.counter(prefix + ".journal_replayed_requests");
  pages_shipped = reg.counter(prefix + ".pages_shipped");
  wal_bytes_replayed = reg.counter(prefix + ".wal_bytes_replayed");
  admitted = reg.counter(prefix + ".admitted");
  shed = reg.counter(prefix + ".shed");
  compare_ms = reg.histogram(prefix + ".compare_ms");
  queued_ms = reg.histogram(prefix + ".queued_ms");
}

ProxyStats ProxyCounters::snapshot() const {
  ProxyStats s;
  if (!sessions) return s;  // never bound (proxy not constructed)
  s.sessions = sessions->value();
  s.units_replicated = units_replicated->value();
  s.units_compared = units_compared->value();
  s.divergences = divergences->value();
  s.timeouts = timeouts->value();
  s.idle_sheds = idle_sheds->value();
  s.passthrough_sessions = passthrough_sessions->value();
  s.signature_blocks = signature_blocks->value();
  s.path_blocks = path_blocks->value();
  s.instance_unreachable = instance_unreachable->value();
  s.quarantines = quarantines->value();
  s.reconnects = reconnects->value();
  s.degraded_sessions = degraded_sessions->value();
  s.quorum_outvotes = quorum_outvotes->value();
  s.resyncs = resyncs->value();
  s.replacements = replacements->value();
  s.journal_replayed_requests = journal_replayed_requests->value();
  s.pages_shipped = pages_shipped->value();
  s.wal_bytes_replayed = wal_bytes_replayed->value();
  s.admitted = admitted->value();
  s.shed = shed->value();
  return s;
}

}  // namespace rddr::core
