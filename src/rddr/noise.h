// De-noising and ephemeral-token detection (paper §IV-B2, §IV-B3).
//
// Line-oriented masked comparison: the filter pair (instances 0 and 1,
// identical images) is compared line by line; where the pair disagrees,
// the differing region — delimited by the pair's common prefix/suffix —
// is marked as noise and excluded when every other instance is compared
// against instance 0. Prefix/suffix masking (rather than fixed character
// ranges) keeps the mask valid when tokens differ in length.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rddr/plugin.h"

namespace rddr::core {

/// Noise mask for one line: enforce the first `prefix` and last `suffix`
/// characters; ignore the middle.
struct LineMask {
  size_t prefix = 0;
  size_t suffix = 0;
  bool whole_line_noise = false;  // pair differed beyond recoverable shape
};

/// Mask over a whole message body.
struct NoiseMask {
  /// One entry per line of instance 0's body; absent entry = exact match
  /// required.
  std::vector<std::optional<LineMask>> lines;
  /// The pair disagreed structurally (different line counts); per the
  /// paper's assumption all pair divergence is benign, so comparison
  /// degrades to structural checks only.
  bool structural_noise = false;
};

/// Builds the mask from the filter pair's lines (instance 0 vs 1).
NoiseMask build_noise_mask(const std::vector<std::string>& pair_a,
                           const std::vector<std::string>& pair_b);

/// Compares candidate lines against reference (instance 0) lines under the
/// mask. Returns a human-readable divergence reason, or nullopt when they
/// match.
std::optional<std::string> masked_compare(
    const std::vector<std::string>& reference,
    const std::vector<std::string>& candidate, const NoiseMask& mask);

/// A detected ephemeral token (paper §IV-B3): per-instance values of an
/// alphanumeric run of length >= 10 that differs across ALL instances.
struct EphemeralToken {
  std::vector<std::string> per_instance;  // [i] = instance i's value
};

/// Scans aligned lines from all N instances for ephemeral tokens using the
/// paper's empirically-chosen criterion (alphanumeric, >= 10 chars).
std::vector<EphemeralToken> detect_ephemeral_tokens(
    const std::vector<std::vector<std::string>>& instance_lines);

/// Longest common prefix length of two strings.
size_t common_prefix(std::string_view a, std::string_view b);
/// Longest common suffix length of two strings.
size_t common_suffix(std::string_view a, std::string_view b);

}  // namespace rddr::core
