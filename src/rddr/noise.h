// DEPRECATED pairwise de-noising entry points (paper §IV-B2, §IV-B3).
//
// The batched DiffEngine (rddr/diff_engine.h) subsumed this API: it
// canonicalises each unit once, builds the filter-pair mask once, scans
// first-divergence across all N responses in one vectorised pass and
// detects ephemeral tokens from the same canonical forms. These wrappers
// remain only for out-of-tree callers; they delegate to the same diff::
// primitives the engine uses (via the process-wide auto-dispatched kernel
// table), so verdicts stay bit-identical — but they re-allocate per call
// and compare pairwise. New code should use DiffEngine / the diff::
// primitives directly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rddr/plugin.h"

namespace rddr::core {

/// Noise mask for one line: enforce the first `prefix` and last `suffix`
/// characters; ignore the middle.
struct LineMask {
  size_t prefix = 0;
  size_t suffix = 0;
  bool whole_line_noise = false;  // pair differed beyond recoverable shape
};

/// Mask over a whole message body.
struct NoiseMask {
  /// One entry per line of instance 0's body; absent entry = exact match
  /// required.
  std::vector<std::optional<LineMask>> lines;
  /// The pair disagreed structurally (different line counts); per the
  /// paper's assumption all pair divergence is benign, so comparison
  /// degrades to structural checks only.
  bool structural_noise = false;
};

/// Builds the mask from the filter pair's lines (instance 0 vs 1).
[[deprecated(
    "pairwise API: use diff::build_line_mask / DiffEngine "
    "(rddr/diff_engine.h)")]]
NoiseMask build_noise_mask(const std::vector<std::string>& pair_a,
                           const std::vector<std::string>& pair_b);

/// Compares candidate lines against reference (instance 0) lines under the
/// mask. Returns a human-readable divergence reason, or nullopt when they
/// match.
[[deprecated(
    "pairwise API: use diff::masked_line_check / DiffEngine "
    "(rddr/diff_engine.h)")]]
std::optional<std::string> masked_compare(
    const std::vector<std::string>& reference,
    const std::vector<std::string>& candidate, const NoiseMask& mask);

/// A detected ephemeral token (paper §IV-B3): per-instance values of an
/// alphanumeric run of length >= 10 that differs across ALL instances.
struct EphemeralToken {
  std::vector<std::string> per_instance;  // [i] = instance i's value
};

/// Scans aligned lines from all N instances for ephemeral tokens using the
/// paper's empirically-chosen criterion (alphanumeric, >= 10 chars).
[[deprecated(
    "pairwise API: use diff::detect_tokens / DiffEngine::forward_downstream "
    "(rddr/diff_engine.h)")]]
std::vector<EphemeralToken> detect_ephemeral_tokens(
    const std::vector<std::vector<std::string>>& instance_lines);

/// Longest common prefix length of two strings.
[[deprecated("use simd::common_prefix (rddr/diff_simd.h)")]]
size_t common_prefix(std::string_view a, std::string_view b);
/// Longest common suffix length of two strings.
[[deprecated("use simd::common_suffix (rddr/diff_simd.h)")]]
size_t common_suffix(std::string_view a, std::string_view b);

}  // namespace rddr::core
