// RDDR protocol plugin interface (paper §IV-B1).
//
// "Support for application layer protocols is implemented by modules that
// comply with a standard interface" — this is that interface. A plugin
// supplies (a) stream framers that cut each direction of a connection into
// comparable units, (b) the differencing logic (with de-noising and
// known-variance rules), (c) ephemeral-state handling (CSRF token capture
// and per-instance restore), and (d) the intervention response emitted to
// the client when RDDR blocks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "rddr/arena.h"

namespace rddr::core {

/// One comparable protocol unit (an HTTP message, a pgwire message, a
/// line, ...). `data` is the exact wire form, suitable for forwarding.
struct Unit {
  Bytes data;
  /// Protocol-specific tag for quick structural checks ("http", "pg:Q",
  /// "pg:D", "line", ...). Units with different kinds always diverge.
  std::string kind;
};

/// Cuts one direction of a byte stream into Units. Implementations wrap
/// the proto parsers. After `failed()`, `unconsumed()` returns the bytes
/// the framer could not interpret; proxies fall back to pass-through.
class StreamFramer {
 public:
  virtual ~StreamFramer() = default;
  virtual void feed(ByteView data) = 0;
  virtual std::vector<Unit> take() = 0;
  virtual bool failed() const = 0;
  virtual Bytes unconsumed() const = 0;
};

/// Which way a framer faces.
enum class Direction {
  kClientToServer,  // requests (replicated / merged)
  kServerToClient,  // responses (diffed)
};

/// Manually configured benign divergence (paper §IV-B4). Deterministic
/// differences that de-noising cannot learn (the filter pair agrees on
/// them) are declared here.
struct KnownVariance {
  /// pgwire ParameterStatus names whose values may differ (e.g.
  /// "server_version" when running version diversity).
  std::vector<std::string> pg_ignore_params = {"server_version",
                                               "application_name"};
  /// BackendKeyData is always instance-specific.
  bool pg_ignore_backend_key = true;
  /// HTTP headers whose values may differ across implementations.
  std::vector<std::string> http_ignore_headers = {"Server", "Date"};
  /// Body lines starting with any of these prefixes are skipped entirely
  /// (e.g. a version banner in a health endpoint).
  std::vector<std::string> http_ignore_line_prefixes;
};

/// Per-client-session state shared between compare/forward/rewrite calls.
/// Most importantly holds the ephemeral-token table: canonical value (the
/// forwarded instance-0 token) -> each instance's own value.
struct SessionState {
  size_t n_instances = 0;
  /// canonical token -> per-instance tokens ([i] for instance i).
  std::map<std::string, std::vector<std::string>> tokens;
  /// Tokens are deleted after one use (paper §IV-B3); the DVWA session
  /// cookie style of reuse can disable this.
  bool delete_tokens_after_use = true;
};

struct DiffOutcome {
  bool divergent = false;
  std::string reason;
};

/// The canonical comparable form of one Unit, produced exactly once per
/// unit per batch by ProtocolPlugin::canonicalize() and consumed by the
/// batched DiffEngine (rddr/diff_engine.h). All views either alias the
/// source Unit or live in the batch arena; both outlive the batch.
struct CanonicalUnit {
  /// Comparability class. Units whose classes differ diverge before any
  /// content is examined (the old "kind mismatch" check, plus protocol
  /// extras such as the pgwire ParameterStatus name).
  ByteView klass;
  /// Human label for divergence reasons on blob-granular protocols
  /// ("line", "json document", "Query SQL", "message DataRow", ...).
  ByteView what;
  /// Agrees by definition under the known-variance rules (BackendKeyData,
  /// ignored ParameterStatus names); content is never compared.
  bool exempt = false;
  /// Line-granular reasons ("instance 2: line 5 differs ...", the HTTP
  /// style) instead of blob reasons ("Query SQL differs across
  /// instances"). Also controls which members the masked walk re-checks,
  /// mirroring the historical pairwise code paths exactly.
  bool per_line = false;
  /// The comparable content, split at comparison granularity: one entry
  /// per line for line-oriented protocols, a single entry holding the
  /// whole canonical blob otherwise.
  ArenaVec<ByteView> lines;
};

/// Context for one compare call.
struct CompareContext {
  /// Instances 0 and 1 are an identical-image filter pair whose mutual
  /// differences are treated as nondeterministic noise (paper §IV-B2).
  bool filter_pair = false;
  const KnownVariance* variance = nullptr;
  SessionState* session = nullptr;
};

class ProtocolPlugin {
 public:
  virtual ~ProtocolPlugin() = default;

  virtual std::string name() const = 0;

  virtual std::unique_ptr<StreamFramer> make_framer(Direction dir) const = 0;

  /// Diffs the k-th unit from every instance (units.size() == N).
  ///
  /// Since the batched DiffEngine landed this is a compatibility shim:
  /// the concrete plugins implement it as DiffEngine::compare() in strict
  /// mode, so there is exactly one comparison implementation. Proxies no
  /// longer call it on the hot path — they hold their own engine.
  virtual DiffOutcome compare(const std::vector<Unit>& units,
                              const CompareContext& ctx) const = 0;

  /// Decomposes one unit into its canonical comparable form. Called by
  /// the DiffEngine exactly once per unit per batch (this is where the
  /// old call pattern re-canonicalised N times: once for the full
  /// compare, once per leave-one-out subset, once again on forward).
  /// Scratch storage comes from the batch arena. The default treats the
  /// unit as an opaque blob keyed by its kind.
  virtual void canonicalize(const Unit& unit, const CompareContext& ctx,
                            Arena& arena, CanonicalUnit& out) const {
    (void)ctx;
    out.klass = unit.kind;
    out.what = ByteView("unit");
    out.lines.push_back(arena, ByteView(unit.data));
  }

  /// Reason string when instance i's comparability class differs from
  /// instance 0's. Protocols with classes richer than the unit kind
  /// override this to keep their historical reason texts.
  virtual std::string class_mismatch_reason(const std::vector<Unit>& units,
                                            size_t i) const {
    return "unit kind mismatch: instance 0 sent " + units[0].kind +
           ", instance " + std::to_string(i) + " sent " + units[i].kind;
  }

  /// True when the DiffEngine should run ephemeral-token detection over
  /// the canonical lines of a unanimous batch and harvest the hits into
  /// the session (paper §IV-B3). Only HTTP opts in.
  virtual bool harvest_tokens() const { return false; }

  /// Called after a successful compare, before forwarding instance 0's
  /// unit to the client. May harvest ephemeral tokens into the session and
  /// may rewrite the forwarded bytes. Default: forward instance 0 as-is.
  virtual Bytes on_forward_downstream(const std::vector<Unit>& units,
                                      const CompareContext& ctx) const {
    (void)ctx;
    return units[0].data;
  }

  /// Rewrites a client->server unit for a specific instance (restores that
  /// instance's own ephemeral tokens). Default: forward unchanged.
  virtual Bytes rewrite_for_instance(const Unit& unit, size_t instance,
                                     const CompareContext& ctx) const {
    (void)instance;
    (void)ctx;
    return unit.data;
  }

  /// True iff rewrite_for_instance is the identity for EVERY unit, instance
  /// and session state — the proxy then fans one shared buffer out to all N
  /// instances instead of materialising N rewrites. A plugin overriding
  /// rewrite_for_instance MUST leave this false (or return false whenever a
  /// rewrite could fire); claiming identity while rewriting would silently
  /// send un-rewritten bytes. Deliberately defaults to false so forgetting
  /// the flag costs copies, never correctness.
  virtual bool rewrites_identity() const { return false; }

  /// Whether a client->server unit may be re-sent on a fresh connection
  /// when journal-replaying or catch-up shadowing a recovering instance.
  /// Session establishment/teardown units must not be: the replay
  /// connection opens with resync_preamble() and closes on its own.
  /// Default: every unit replays.
  virtual bool replayable(const Unit& unit) const {
    (void)unit;
    return true;
  }

  /// Bytes to send to the client when RDDR intervenes. Empty => just
  /// close the connection (the pgwire behaviour).
  virtual Bytes intervention_response() const { return {}; }

  /// Bytes to send to a client the front tier sheds under overload — a
  /// fast, protocol-correct rejection ("try again later"), distinct from
  /// the security intervention above. Defaults to the intervention
  /// response; protocols with a native overload signal override (HTTP
  /// 503, pgwire SQLSTATE 53300).
  virtual Bytes overload_response() const { return intervention_response(); }

  /// Opening bytes for a proxy-originated connection to one instance (the
  /// resync journal replay): whatever the protocol requires before
  /// request units are accepted — a pgwire startup packet, nothing for
  /// HTTP. Empty (default) means units can be sent immediately.
  virtual Bytes resync_preamble() const { return {}; }
};

}  // namespace rddr::core
