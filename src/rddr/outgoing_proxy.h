// RDDR Outgoing Request Proxy (paper §IV-B).
//
// The dual of the incoming proxy: the N instances of the protected
// microservice each open what they believe is a connection to a backend
// microservice; this proxy groups those N connections (by flow label),
// diffs each request unit across the group, forwards ONE copy to the real
// backend, and fans the backend's response bytes back to every instance.
// Divergence (including an instance that never dials in before the group
// window expires) is reported on the DivergenceBus so the incoming proxy
// can abort the client session.
//
// Under a non-strict DegradationPolicy an absent or crashed instance is a
// fault, not an attack: groups complete with the instances that did show
// up (down to `min_group_size`, or a single uncompared member under
// kFailOpen), mid-stream losses drop the member instead of the flow, and
// a kQuorum majority outvotes a single divergent minority.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/divergence.h"
#include "rddr/health.h"
#include "rddr/options.h"
#include "rddr/plugin.h"

namespace rddr::core {

class OutgoingProxy {
 public:
  struct Config : ProxyOptions {
    Config() {
      name = "rddr-out";
      base_memory_bytes = 16LL << 20;
    }

    /// Address the instances dial (their configured "backend").
    std::string listen_address;
    /// The real backend microservice.
    std::string backend_address;
    /// Number of instances expected per flow group (N).
    size_t group_size = 3;
    /// If the group is still incomplete this long after its first member
    /// connected, that is divergence-by-absence (e.g. one proxy variant
    /// refused the request the others forwarded).
    sim::Time group_window = 100 * sim::kMillisecond;
    /// Smallest group a non-strict policy will still verify (kFailOpen
    /// additionally passes a single surviving member through uncompared).
    /// `health` reconnect fields are unused here: instances dial in, so a
    /// quarantined source is re-admitted the moment it shows up in a new
    /// group; health is indexed like `instance_sources` (which must be set
    /// for per-instance tracking to engage).
    size_t min_group_size = 2;
    /// Optional: pin instance order by ConnectMeta::source so the filter
    /// pair occupies slots 0 and 1 regardless of arrival order.
    std::vector<std::string> instance_sources;
  };

  OutgoingProxy(sim::Network& net, sim::Host& host, Config config,
                DivergenceBus* bus = nullptr);
  ~OutgoingProxy();
  OutgoingProxy(const OutgoingProxy&) = delete;
  OutgoingProxy& operator=(const OutgoingProxy&) = delete;

  /// Counter snapshot out of the metrics registry (compatibility view).
  ProxyStats stats() const { return counters_.snapshot(); }
  const Config& config() const { return config_; }

  /// Registry the proxy publishes into (the configured one, else the
  /// proxy-private fallback).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Per-instance health view (meaningful when `instance_sources` is set).
  const HealthTracker& health() const { return health_; }

  /// Aborts every active flow group (invoked via the DivergenceBus when a
  /// sibling proxy detects divergence).
  void abort_all_sessions(const std::string& reason);

  /// Swaps instance slot `i` to a replacement replica dialling in from
  /// `source_node` (requires `instance_sources`). The slot starts
  /// quarantined with clean health state and is re-admitted the moment the
  /// new replica shows up in a group — the dial-in IS the liveness probe.
  void replace_instance(size_t i, const std::string& source_node);

 private:
  struct Group;
  void on_accept(sim::ConnPtr conn);
  void register_handlers(const std::shared_ptr<Group>& g, size_t i);
  void on_window_expired(const std::shared_ptr<Group>& g);
  void complete_group(const std::shared_ptr<Group>& g);
  void pump(const std::shared_ptr<Group>& g);
  /// On divergence: count, report the attributed record (bus + legacy
  /// hook), tear down. `verdict`/`units` enrich the record when available.
  void intervene(const std::shared_ptr<Group>& g, const std::string& reason,
                 const BatchVerdict* verdict = nullptr,
                 const std::vector<Unit>* units = nullptr);
  /// Builds the enriched DivergenceRecord — diff region, instance-0 unit,
  /// inherited trace id and the group's execution index — and reports it
  /// into the AttributionSink (the shared bus, or the proxy-private one).
  void record_divergence(const char* verdict_class, const std::string& reason,
                         const BatchVerdict* verdict,
                         const std::vector<Unit>* units, const Group* g);
  void teardown(const std::shared_ptr<Group>& g);
  /// Removes member i from the group (non-strict policies); returns false
  /// when the group could not continue and was ended.
  bool drop_member(const std::shared_ptr<Group>& g, size_t i,
                   const std::string& why);
  void enter_failopen(const std::shared_ptr<Group>& g);
  size_t source_index(const std::string& source) const;
  /// How many members a new group should wait for: N, minus instances
  /// currently quarantined/dead (non-strict with health tracking only).
  size_t expected_members() const;
  void end_group_spans(const std::shared_ptr<Group>& g);

  sim::Network& net_;
  sim::Host& host_;
  Config config_;
  DivergenceBus* bus_;
  /// Fallback sink when constructed without a shared bus: every record
  /// still flows through one AttributionSink.
  std::unique_ptr<DivergenceBus> own_bus_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // fallback registry
  obs::MetricsRegistry* metrics_;
  ProxyCounters counters_;
  HealthTracker health_;
  /// Batched N-way diff-and-denoise data plane (configured from
  /// Config::diff): one engine, one arena, reused across every compare.
  DiffEngine engine_;
  uint64_t next_group_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Group>> groups_;
};

}  // namespace rddr::core
