// NVersionDeployment: wires the RDDR proxies around a protected
// microservice's instances — the "add RDDR to a deployment" step the
// paper reports taking about an hour of configuration (§V-C1).
//
// Two ways to configure one:
//  * fill an Options struct by hand (full control, both proxies), or
//  * use NVersionDeployment::Builder, a fluent one-liner for the common
//    shapes:
//
//      auto rddr = core::NVersionDeployment::Builder()
//                      .listen("render:80")
//                      .versions({"render-0:80", "render-1:80"})
//                      .plugin(std::make_shared<core::HttpPlugin>())
//                      .trace(&tracer)
//                      .build(net, host);
//
// Builder-set shared knobs (plugin, variance, degradation, health,
// unit_timeout, observability sinks) apply to the incoming proxy AND to
// every backend() added, so the two sides never disagree on policy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netsim/fault.h"
#include "rddr/divergence.h"
#include "rddr/incoming_proxy.h"
#include "rddr/outgoing_proxy.h"

namespace rddr::core {

class Frontier;

class NVersionDeployment {
 public:
  struct Options {
    IncomingProxy::Config incoming;
    /// Zero or more, one per distinct backend microservice the protected
    /// service talks to (paper: "one proxy assigned for each distinct
    /// microservice").
    std::vector<OutgoingProxy::Config> outgoing;
    /// Deployment-wide record subscriber: subscribed to the shared bus's
    /// record stream at construction, so it fires once per divergence
    /// record (intervention or outvote) from ANY proxy of the deployment.
    std::function<void(const DivergenceRecord&)> on_record;
  };

  class Builder {
   public:
    /// Name of the incoming proxy (metric prefix / bus identity).
    Builder& name(std::string n);
    /// Address clients dial.
    Builder& listen(std::string address);
    /// The N diverse instances, replacing any added so far.
    Builder& versions(std::vector<std::string> addresses);
    /// Appends one instance address.
    Builder& add_version(std::string address);
    Builder& plugin(std::shared_ptr<ProtocolPlugin> p);
    Builder& filter_pair(bool on = true);
    Builder& variance(KnownVariance v);
    Builder& degradation(DegradationPolicy p);
    Builder& health(HealthTracker::Options h);
    Builder& unit_timeout(sim::Time t);
    /// Idle-session read timeout for the incoming proxy (see
    /// ProxyOptions::idle_timeout; progress-based slowloris shedding).
    Builder& idle_timeout(sim::Time t);
    /// Targeted path quarantine on the incoming proxy: sessions arriving
    /// from a call site with this many attributed interventions are
    /// refused (ProxyOptions::path_quarantine_threshold; 0 = off).
    Builder& path_quarantine(uint32_t threshold);
    /// Deployment-wide divergence hook: subscribed to the shared bus's
    /// record stream (DivergenceBus::subscribe_records), firing once per
    /// record from any proxy of the deployment. Replaces the deprecated
    /// per-proxy ProxyOptions::on_divergence field.
    Builder& on_divergence(std::function<void(const DivergenceRecord&)> cb);
    /// Batched DiffEngine knobs (SIMD kernel selection, arena sizing),
    /// applied to every proxy and frontier shard in the deployment.
    Builder& diff(DiffEngineOptions d);
    /// CPU model for the de-noise+diff work (per compared unit / byte).
    Builder& cpu_model(double cpu_per_unit, double cpu_per_byte);
    /// Whether ephemeral tokens are deleted after first use (default on).
    Builder& delete_tokens(bool on = true);
    Builder& signature_blocking(bool on, uint32_t threshold = 1);
    /// Recovery: resync quarantined instances from a trusted peer before
    /// readmission (incoming proxy only; see ResyncOptions).
    Builder& resync(ResyncOptions r);
    /// Hook fired when an instance is declared dead (for auto-replacement
    /// via an orchestrator; see IncomingProxy::Config::on_instance_dead).
    Builder& on_instance_dead(
        std::function<void(size_t, const std::string&)> fn);
    /// Adds an outgoing proxy between the instances and one real backend.
    /// `listen_address` is what the instances believe the backend to be.
    /// Shared knobs plus group_size/instance_sources (derived from the
    /// version list) are filled in at build time; use the Config overload
    /// to override them.
    Builder& backend(std::string listen_address, std::string backend_address);
    Builder& backend(OutgoingProxy::Config cfg);
    /// Observability sinks, applied to every proxy (not owned).
    Builder& metrics(obs::MetricsRegistry* reg);
    Builder& trace(obs::Tracer* tracer);
    /// Schedules deterministic faults against the deployment's network.
    /// The callback runs once inside build(); the FaultPlan it receives is
    /// owned by the deployment (see fault_plan()).
    Builder& faults(std::function<void(sim::FaultPlan&)> fn);

    // -- scale-out (consumed by build_frontier; build() ignores them) --

    /// Number of front-tier shards (see rddr/frontier.h).
    Builder& shards(size_t s);
    /// Admission control / load shedding for the front tier.
    Builder& admission(AdmissionOptions a);
    /// Per-shard instance pools: pools[k] is shard k's version list. When
    /// set it overrides versions() and implies shards(pools.size());
    /// without it every shard fronts the shared versions() pool.
    Builder& shard_versions(std::vector<std::vector<std::string>> pools);
    /// Partitions the simulation into `n` islands (netsim/parallel.h) and
    /// pins each shard's column — host, proxies, instance nodes, suffixed
    /// backend listeners — to one island (island 0 keeps the public
    /// listener, the workload driver and anything unpinned; shards spread
    /// over islands 1..n-1, or all stay on 0 when n == 1). n == 1 is the
    /// sequential oracle: it flips every islands-mode code path on without
    /// creating worker threads, so its outputs must be byte-identical to
    /// any n > 1. 0 (default) leaves the legacy single-loop behaviour
    /// untouched. Determinism across island counts requires the shard
    /// columns to be disjoint: per-shard pools (shard_versions) qualify; a
    /// pool or backend shared by two shards may see same-tick deliveries
    /// from different islands whose merge order is island-dependent.
    Builder& islands(size_t n);

    /// The fully resolved Options this builder would deploy (shared knobs
    /// propagated into each outgoing config).
    Options options() const;

    std::unique_ptr<NVersionDeployment> build(sim::Network& net,
                                              sim::Host& proxy_host) const;

    /// Deploys the scale-out front tier: S independent proxy shards behind
    /// one public listener with consistent-hash routing, admission control
    /// and load shedding. All shards run on `proxy_host`; the vector
    /// overload pins shard k's proxies to shard_hosts[k % size].
    std::unique_ptr<Frontier> build_frontier(sim::Network& net,
                                             sim::Host& proxy_host) const;
    std::unique_ptr<Frontier> build_frontier(
        sim::Network& net, const std::vector<sim::Host*>& shard_hosts) const;

   private:
    IncomingProxy::Config incoming_;
    struct PendingBackend {
      OutgoingProxy::Config cfg;
      bool inherit = false;  // fill shared knobs from the builder
    };
    std::vector<PendingBackend> backends_;
    std::function<void(const DivergenceRecord&)> on_record_;
    std::vector<std::vector<std::string>> shard_versions_;
    std::function<void(sim::FaultPlan&)> faults_;
    size_t islands_ = 0;  // 0 = legacy single event loop
  };

  /// All proxies run on `proxy_host` and share one DivergenceBus.
  NVersionDeployment(sim::Network& net, sim::Host& proxy_host,
                     Options options);

  DivergenceBus& bus() { return bus_; }
  IncomingProxy& incoming() { return *incoming_; }
  OutgoingProxy& outgoing(size_t i = 0) { return *outgoing_.at(i); }
  size_t outgoing_count() const { return outgoing_.size(); }

  /// The fault plan scheduled via Builder::faults (null when none).
  sim::FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Swaps instance slot `i` to a replacement replica at `new_address`
  /// across every proxy: the incoming proxy re-probes (and resyncs) the
  /// new address; each outgoing proxy re-pins the slot to the new
  /// replica's node name.
  void replace_instance(size_t i, const std::string& new_address);

  /// Total interventions across all proxies.
  uint64_t divergences() const { return bus_.count(); }

  /// Element-wise sum of every proxy's counters (availability counters
  /// included: instance_unreachable, quarantines, reconnects,
  /// degraded_sessions, quorum_outvotes).
  ProxyStats aggregate_stats() const;

 private:
  friend class Builder;

  DivergenceBus bus_;
  std::unique_ptr<IncomingProxy> incoming_;
  std::vector<std::unique_ptr<OutgoingProxy>> outgoing_;
  std::unique_ptr<sim::FaultPlan> fault_plan_;
};

}  // namespace rddr::core
