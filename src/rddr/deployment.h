// NVersionDeployment: wires the RDDR proxies around a protected
// microservice's instances — the "add RDDR to a deployment" step the
// paper reports taking about an hour of configuration (§V-C1).
#pragma once

#include <memory>
#include <vector>

#include "rddr/divergence.h"
#include "rddr/incoming_proxy.h"
#include "rddr/outgoing_proxy.h"

namespace rddr::core {

class NVersionDeployment {
 public:
  struct Options {
    IncomingProxy::Config incoming;
    /// Zero or more, one per distinct backend microservice the protected
    /// service talks to (paper: "one proxy assigned for each distinct
    /// microservice").
    std::vector<OutgoingProxy::Config> outgoing;
  };

  /// All proxies run on `proxy_host` and share one DivergenceBus.
  NVersionDeployment(sim::Network& net, sim::Host& proxy_host,
                     Options options);

  DivergenceBus& bus() { return bus_; }
  IncomingProxy& incoming() { return *incoming_; }
  OutgoingProxy& outgoing(size_t i = 0) { return *outgoing_.at(i); }
  size_t outgoing_count() const { return outgoing_.size(); }

  /// Total interventions across all proxies.
  uint64_t divergences() const { return bus_.count(); }

  /// Element-wise sum of every proxy's counters (availability counters
  /// included: instance_unreachable, quarantines, reconnects,
  /// degraded_sessions, quorum_outvotes).
  ProxyStats aggregate_stats() const;

 private:
  DivergenceBus bus_;
  std::unique_ptr<IncomingProxy> incoming_;
  std::vector<std::unique_ptr<OutgoingProxy>> outgoing_;
};

}  // namespace rddr::core
