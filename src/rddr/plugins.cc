#include "rddr/plugins.h"

#include <algorithm>
#include <cstring>

#include "common/strutil.h"
#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "proto/json/json.h"
#include "proto/pgwire/pgwire.h"
#include "rddr/diff_engine.h"

namespace rddr::core {

namespace {

// ---------- framers ----------

/// '\n'-delimited lines; never fails.
class LineFramer : public StreamFramer {
 public:
  void feed(ByteView data) override { buf_.append(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    size_t nl;
    while ((nl = buf_.find('\n')) != Bytes::npos) {
      Unit u;
      u.data = buf_.substr(0, nl + 1);
      u.kind = "line";
      buf_.erase(0, nl + 1);
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return false; }
  Bytes unconsumed() const override { return buf_; }

 private:
  Bytes buf_;
};

/// HTTP requests. Lenient framing: RDDR forwards original bytes, so its
/// own framing choice must never *hide* bytes from instances — anything
/// consumed is forwarded, anything unparseable flips the session to
/// pass-through.
class HttpRequestFramer : public StreamFramer {
 public:
  HttpRequestFramer() : parser_(lenient_options()) {}
  void feed(ByteView data) override { parser_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& req : parser_.take()) {
      Unit u;
      u.data = std::move(req.raw);
      u.kind = "http-req";
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return parser_.failed(); }
  Bytes unconsumed() const override { return parser_.unconsumed(); }

  static http::ParserOptions lenient_options() {
    http::ParserOptions o;
    o.te_whitespace = http::TeWhitespace::kAnyWhitespace;
    o.reject_te_and_cl = false;
    o.reject_duplicate_cl = false;
    return o;
  }

 private:
  http::RequestParser parser_;
};

class HttpResponseFramer : public StreamFramer {
 public:
  HttpResponseFramer() : parser_(HttpRequestFramer::lenient_options()) {}
  void feed(ByteView data) override { parser_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& resp : parser_.take()) {
      Unit u;
      u.data = std::move(resp.raw);
      u.kind = "http-resp";
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return parser_.failed(); }
  Bytes unconsumed() const override { return parser_.unconsumed(); }

 private:
  http::ResponseParser parser_;
};

class PgFramer : public StreamFramer {
 public:
  explicit PgFramer(bool expect_startup) : reader_(expect_startup) {}
  void feed(ByteView data) override { reader_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& msg : reader_.take()) {
      Unit u;
      if (msg.type == 0) {
        u.kind = "pg:startup";
        uint32_t len = static_cast<uint32_t>(msg.payload.size() + 4);
        put_u32_be(u.data, len);
        u.data += msg.payload;
      } else {
        u.kind = std::string("pg:") + msg.type;
        u.data.push_back(msg.type);
        put_u32_be(u.data, static_cast<uint32_t>(msg.payload.size() + 4));
        u.data += msg.payload;
      }
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return reader_.failed(); }
  Bytes unconsumed() const override { return reader_.unconsumed(); }

 private:
  pg::MessageReader reader_;
};

/// Extracts a pg message payload back out of a framed unit.
ByteView pg_payload(const Unit& u) {
  if (u.kind == "pg:startup") return ByteView(u.data).substr(4);
  return ByteView(u.data).substr(5);
}

/// ParameterStatus name: the NUL-terminated first field of the payload.
ByteView pg_param_name(const Unit& u) {
  ByteView payload = pg_payload(u);
  size_t nul = payload.find('\0');
  return nul == ByteView::npos ? payload : payload.substr(0, nul);
}

/// Compatibility shim behind ProtocolPlugin::compare(): the plugins
/// delegate to a thread-local strict-mode DiffEngine so the batched
/// engine is the single comparison implementation. Proxies do not go
/// through here — they own their engine (with their configured knobs).
DiffOutcome engine_compare(const ProtocolPlugin& plugin,
                           const std::vector<Unit>& units,
                           const CompareContext& ctx) {
  thread_local DiffEngine engine;
  BatchVerdict v = engine.compare(plugin, units, ctx, VoteMode::kStrict);
  return {!v.agreed, std::move(v.reason)};
}

}  // namespace

// ---------- TcpLinePlugin ----------

std::unique_ptr<StreamFramer> TcpLinePlugin::make_framer(Direction) const {
  return std::make_unique<LineFramer>();
}

DiffOutcome TcpLinePlugin::compare(const std::vector<Unit>& units,
                                   const CompareContext& ctx) const {
  return engine_compare(*this, units, ctx);
}

void TcpLinePlugin::canonicalize(const Unit& unit, const CompareContext&,
                                 Arena& arena, CanonicalUnit& out) const {
  out.klass = unit.kind;
  out.what = ByteView("line");
  out.lines.push_back(arena, ByteView(unit.data));
}

// ---------- HttpPlugin ----------

std::unique_ptr<StreamFramer> HttpPlugin::make_framer(Direction dir) const {
  if (dir == Direction::kClientToServer)
    return std::make_unique<HttpRequestFramer>();
  return std::make_unique<HttpResponseFramer>();
}

void HttpPlugin::canonicalize(const Unit& unit, const CompareContext& ctx,
                              Arena& arena, CanonicalUnit& out) const {
  const KnownVariance* kv = ctx.variance;
  out.klass = unit.kind;
  out.what = ByteView("unit");
  out.per_line = true;
  http::ResponseParser parser(HttpRequestFramer::lenient_options());
  parser.feed(unit.data);
  auto msgs = parser.take();
  if (msgs.size() != 1) {
    // Unparseable: compare raw bytes as lines.
    for (const auto& l : split_lines(unit.data))
      out.lines.push_back(arena, arena.copy(l));
    return;
  }
  http::Response& resp = msgs[0];
  out.lines.push_back(arena,
                      arena.copy(resp.version + " " + std::to_string(resp.status) +
                                 " " + resp.reason));
  for (const auto& [name, value] : resp.headers.entries()) {
    bool ignored = false;
    if (kv) {
      for (const auto& ign : kv->http_ignore_headers)
        if (iequals(name, ign)) ignored = true;
    }
    if (!ignored) out.lines.push_back(arena, arena.copy(name + ": " + value));
  }
  // Body: decode content-coding, canonicalise JSON, then split to lines.
  Bytes body = resp.body;
  auto enc = resp.headers.get("Content-Encoding");
  if (enc && iequals(*enc, "xz77")) {
    auto decoded = http::xz77_decompress(body);
    if (decoded) body = std::move(*decoded);
    else out.lines.push_back(arena, ByteView("!undecodable-content-coding"));
  }
  auto ctype = resp.headers.get("Content-Type");
  if (opts_.canonicalize_json && ctype &&
      ifind(*ctype, "json") != std::string::npos) {
    auto doc = json::parse(body);
    if (doc) {
      out.lines.push_back(arena, arena.copy(doc->dump()));
      return;
    }
  }
  for (const auto& l : split_lines(body)) {
    if (kv) {
      bool skip = false;
      for (const auto& pre : kv->http_ignore_line_prefixes)
        if (starts_with(l, pre)) skip = true;
      if (skip) continue;
    }
    out.lines.push_back(arena, arena.copy(l));
  }
}

std::vector<std::string> HttpPlugin::comparable_lines(
    const Unit& unit, const KnownVariance* kv) const {
  Arena arena(4096);
  CanonicalUnit canon;
  CompareContext ctx;
  ctx.variance = kv;
  canonicalize(unit, ctx, arena, canon);
  std::vector<std::string> lines;
  lines.reserve(canon.lines.size());
  for (ByteView v : canon.lines) lines.emplace_back(v);
  return lines;
}

DiffOutcome HttpPlugin::compare(const std::vector<Unit>& units,
                                const CompareContext& ctx) const {
  return engine_compare(*this, units, ctx);
}

Bytes HttpPlugin::on_forward_downstream(const std::vector<Unit>& units,
                                        const CompareContext& ctx) const {
  // Harvest ephemeral tokens (CSRF, session ids): alphanumeric runs >= 10
  // chars that differ across ALL instances (paper §IV-B3). Standalone
  // callers get a fresh engine pass; proxies call their own engine's
  // forward_downstream, which reuses the compare's canonical forms.
  thread_local DiffEngine engine;
  return engine.forward_downstream(*this, units, ctx);
}

Bytes HttpPlugin::rewrite_for_instance(const Unit& unit, size_t instance,
                                       const CompareContext& ctx) const {
  if (!opts_.handle_ephemeral_state || !ctx.session ||
      ctx.session->tokens.empty())
    return unit.data;
  // Find tokens present in this request.
  bool any = false;
  for (const auto& [canonical, _] : ctx.session->tokens) {
    if (unit.data.find(canonical) != Bytes::npos) {
      any = true;
      break;
    }
  }
  if (!any) return unit.data;

  // Re-frame so Content-Length stays correct if token lengths differ.
  http::RequestParser parser(HttpRequestFramer::lenient_options());
  parser.feed(unit.data);
  auto msgs = parser.take();
  std::vector<std::string> used;
  Bytes out;
  if (msgs.size() == 1) {
    http::Request& req = msgs[0];
    for (const auto& [canonical, per_instance] : ctx.session->tokens) {
      const std::string& mine = per_instance[instance];
      if (req.body.find(canonical) != Bytes::npos ||
          req.target.find(canonical) != std::string::npos) {
        req.body = replace_all(req.body, canonical, mine);
        req.target = replace_all(req.target, canonical, mine);
        used.push_back(canonical);
      }
      http::HeaderMap rewritten;
      bool header_hit = false;
      for (const auto& [name, value] : req.headers.entries()) {
        if (value.find(canonical) != std::string::npos) {
          rewritten.add(name, replace_all(value, canonical, mine));
          header_hit = true;
        } else {
          rewritten.add(name, value);
        }
      }
      if (header_hit) {
        req.headers = std::move(rewritten);
        used.push_back(canonical);
      }
    }
    req.headers.set("Content-Length", std::to_string(req.body.size()));
    out = req.to_bytes();
  } else {
    // Could not re-frame: raw replacement (token lengths match in all our
    // generators, so Content-Length is preserved).
    out = unit.data;
    for (const auto& [canonical, per_instance] : ctx.session->tokens) {
      if (out.find(canonical) != Bytes::npos) {
        out = replace_all(out, canonical, per_instance[instance]);
        used.push_back(canonical);
      }
    }
  }
  // "Because they are ephemeral, tokens are deleted after forwarding" —
  // once the LAST instance's copy was rewritten.
  if (ctx.session->delete_tokens_after_use &&
      instance + 1 == ctx.session->n_instances) {
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    for (const auto& c : used) ctx.session->tokens.erase(c);
  }
  return out;
}

Bytes HttpPlugin::intervention_response() const {
  http::Response resp = http::make_response(
      403,
      "<html><head><title>RDDR</title></head><body>"
      "<h1>RDDR intervened</h1>"
      "<p>The replicated instances of this service disagreed about the "
      "response to your request. The connection has been closed to prevent "
      "a potential information leak.</p></body></html>");
  resp.headers.set("Connection", "close");
  return resp.to_bytes();
}

Bytes HttpPlugin::overload_response() const {
  http::Response resp = http::make_response(
      503,
      "<html><head><title>RDDR</title></head><body>"
      "<h1>503 Service Unavailable</h1>"
      "<p>The front tier is at capacity; the request was shed before "
      "reaching the service. Retry shortly.</p></body></html>");
  resp.headers.set("Connection", "close");
  resp.headers.set("Retry-After", "1");
  return resp.to_bytes();
}

// ---------- PgPlugin ----------

std::unique_ptr<StreamFramer> PgPlugin::make_framer(Direction dir) const {
  return std::make_unique<PgFramer>(dir == Direction::kClientToServer);
}

DiffOutcome PgPlugin::compare(const std::vector<Unit>& units,
                              const CompareContext& ctx) const {
  return engine_compare(*this, units, ctx);
}

void PgPlugin::canonicalize(const Unit& unit, const CompareContext& ctx,
                            Arena& arena, CanonicalUnit& out) const {
  const KnownVariance* kv = ctx.variance;
  const std::string& kind = unit.kind;
  out.klass = kind;
  if (kind == "pg:K") {
    // BackendKeyData is always instance-specific.
    out.exempt = !kv || kv->pg_ignore_backend_key;
  } else if (kind == "pg:S") {
    // ParameterStatus: the name is part of the comparability class (names
    // must agree); configured names may vary in value.
    ByteView name = pg_param_name(unit);
    char* k = static_cast<char*>(arena.alloc(kind.size() + 1 + name.size(), 1));
    std::memcpy(k, kind.data(), kind.size());
    k[kind.size()] = '\0';
    if (!name.empty()) std::memcpy(k + kind.size() + 1, name.data(), name.size());
    out.klass = ByteView(k, kind.size() + 1 + name.size());
    if (kv) {
      for (const auto& ign : kv->pg_ignore_params)
        if (name == ign) out.exempt = true;
    }
    out.what = ByteView("ParameterStatus");
    out.lines.push_back(arena, ByteView(unit.data));
    return;
  } else if (kind == "pg:Q") {
    // Query merge (outgoing proxy): compare SQL text so divergence reasons
    // are readable ("...WHERE id = ''' OR ..." beats raw frame bytes).
    out.what = ByteView("Query SQL");
    auto q = pg::parse_query(pg_payload(unit));
    out.lines.push_back(arena, q ? arena.copy(*q) : ByteView(unit.data));
    return;
  }
  out.what = arena.copy(
      "message " + pg::type_name(kind.size() > 3 ? kind[3] : '?'));
  out.lines.push_back(arena, ByteView(unit.data));
}

std::string PgPlugin::class_mismatch_reason(const std::vector<Unit>& units,
                                            size_t i) const {
  if (units[i].kind != units[0].kind)
    return ProtocolPlugin::class_mismatch_reason(units, i);
  // Same kind, so the class split was the ParameterStatus name.
  return "ParameterStatus name mismatch: " + std::string(pg_param_name(units[0])) +
         " vs " + std::string(pg_param_name(units[i]));
}

Bytes PgPlugin::intervention_response() const {
  return pg::build_error("RDDRX",
                         "RDDR intervened: instance responses diverged; "
                         "connection aborted to prevent information leak");
}

Bytes PgPlugin::overload_response() const {
  return pg::build_error("53300",
                         "RDDR front tier at capacity: connection shed "
                         "before reaching the instances; retry shortly");
}

Bytes PgPlugin::resync_preamble() const {
  // The journal holds mid-session Query units; a fresh replay connection
  // needs the handshake the original client performed long ago.
  return pg::build_startup({{"user", "postgres"}, {"database", "app"}});
}

bool PgPlugin::replayable(const Unit& unit) const {
  // A client that handshakes or disconnects while an instance is away
  // must not inject a second startup (which desyncs pgwire framing) or a
  // Terminate (which would cut the replay stream short) mid-replay.
  return unit.kind != "pg:startup" && unit.kind != "pg:X";
}

// ---------- JsonLinesPlugin ----------

std::unique_ptr<StreamFramer> JsonLinesPlugin::make_framer(Direction) const {
  return std::make_unique<LineFramer>();
}

DiffOutcome JsonLinesPlugin::compare(const std::vector<Unit>& units,
                                     const CompareContext& ctx) const {
  return engine_compare(*this, units, ctx);
}

void JsonLinesPlugin::canonicalize(const Unit& unit, const CompareContext&,
                                   Arena& arena, CanonicalUnit& out) const {
  out.klass = unit.kind;
  out.what = ByteView("json document");
  // Canonicalise the document; malformed docs compare as raw bytes.
  auto doc = json::parse(trim(unit.data));
  out.lines.push_back(arena, doc ? arena.copy(doc->dump()) : ByteView(unit.data));
}

}  // namespace rddr::core
