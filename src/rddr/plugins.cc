#include "rddr/plugins.h"

#include <algorithm>

#include "common/strutil.h"
#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "proto/json/json.h"
#include "proto/pgwire/pgwire.h"
#include "rddr/noise.h"

namespace rddr::core {

namespace {

// ---------- framers ----------

/// '\n'-delimited lines; never fails.
class LineFramer : public StreamFramer {
 public:
  void feed(ByteView data) override { buf_.append(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    size_t nl;
    while ((nl = buf_.find('\n')) != Bytes::npos) {
      Unit u;
      u.data = buf_.substr(0, nl + 1);
      u.kind = "line";
      buf_.erase(0, nl + 1);
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return false; }
  Bytes unconsumed() const override { return buf_; }

 private:
  Bytes buf_;
};

/// HTTP requests. Lenient framing: RDDR forwards original bytes, so its
/// own framing choice must never *hide* bytes from instances — anything
/// consumed is forwarded, anything unparseable flips the session to
/// pass-through.
class HttpRequestFramer : public StreamFramer {
 public:
  HttpRequestFramer() : parser_(lenient_options()) {}
  void feed(ByteView data) override { parser_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& req : parser_.take()) {
      Unit u;
      u.data = std::move(req.raw);
      u.kind = "http-req";
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return parser_.failed(); }
  Bytes unconsumed() const override { return parser_.unconsumed(); }

  static http::ParserOptions lenient_options() {
    http::ParserOptions o;
    o.te_whitespace = http::TeWhitespace::kAnyWhitespace;
    o.reject_te_and_cl = false;
    o.reject_duplicate_cl = false;
    return o;
  }

 private:
  http::RequestParser parser_;
};

class HttpResponseFramer : public StreamFramer {
 public:
  HttpResponseFramer() : parser_(HttpRequestFramer::lenient_options()) {}
  void feed(ByteView data) override { parser_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& resp : parser_.take()) {
      Unit u;
      u.data = std::move(resp.raw);
      u.kind = "http-resp";
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return parser_.failed(); }
  Bytes unconsumed() const override { return parser_.unconsumed(); }

 private:
  http::ResponseParser parser_;
};

class PgFramer : public StreamFramer {
 public:
  explicit PgFramer(bool expect_startup) : reader_(expect_startup) {}
  void feed(ByteView data) override { reader_.feed(data); }
  std::vector<Unit> take() override {
    std::vector<Unit> out;
    for (auto& msg : reader_.take()) {
      Unit u;
      if (msg.type == 0) {
        u.kind = "pg:startup";
        uint32_t len = static_cast<uint32_t>(msg.payload.size() + 4);
        put_u32_be(u.data, len);
        u.data += msg.payload;
      } else {
        u.kind = std::string("pg:") + msg.type;
        u.data.push_back(msg.type);
        put_u32_be(u.data, static_cast<uint32_t>(msg.payload.size() + 4));
        u.data += msg.payload;
      }
      out.push_back(std::move(u));
    }
    return out;
  }
  bool failed() const override { return reader_.failed(); }
  Bytes unconsumed() const override { return reader_.unconsumed(); }

 private:
  pg::MessageReader reader_;
};

/// Extracts a pg message payload back out of a framed unit.
ByteView pg_payload(const Unit& u) {
  if (u.kind == "pg:startup") return ByteView(u.data).substr(4);
  return ByteView(u.data).substr(5);
}

bool kinds_match(const std::vector<Unit>& units, std::string* reason) {
  for (size_t i = 1; i < units.size(); ++i) {
    if (units[i].kind != units[0].kind) {
      *reason = strformat("unit kind mismatch: instance 0 sent %s, instance "
                          "%zu sent %s",
                          units[0].kind.c_str(), i, units[i].kind.c_str());
      return false;
    }
  }
  return true;
}

/// Generic single-blob comparison with optional filter-pair masking.
DiffOutcome compare_blobs(const std::vector<Unit>& units, bool filter_pair,
                          const char* what) {
  bool all_equal = true;
  for (size_t i = 1; i < units.size(); ++i)
    if (units[i].data != units[0].data) all_equal = false;
  if (all_equal) return {};
  if (!filter_pair || units.size() < 3) {
    return {true, strformat("%s differs across instances", what)};
  }
  std::vector<std::string> a{units[0].data}, b{units[1].data};
  NoiseMask mask = build_noise_mask(a, b);
  for (size_t i = 2; i < units.size(); ++i) {
    std::vector<std::string> cand{units[i].data};
    auto bad = masked_compare(a, cand, mask);
    if (bad)
      return {true, strformat("%s: instance %zu: %s", what, i, bad->c_str())};
  }
  return {};
}

}  // namespace

// ---------- TcpLinePlugin ----------

std::unique_ptr<StreamFramer> TcpLinePlugin::make_framer(Direction) const {
  return std::make_unique<LineFramer>();
}

DiffOutcome TcpLinePlugin::compare(const std::vector<Unit>& units,
                                   const CompareContext& ctx) const {
  std::string reason;
  if (!kinds_match(units, &reason)) return {true, reason};
  return compare_blobs(units, ctx.filter_pair, "line");
}

// ---------- HttpPlugin ----------

std::unique_ptr<StreamFramer> HttpPlugin::make_framer(Direction dir) const {
  if (dir == Direction::kClientToServer)
    return std::make_unique<HttpRequestFramer>();
  return std::make_unique<HttpResponseFramer>();
}

std::vector<std::string> HttpPlugin::comparable_lines(
    const Unit& unit, const KnownVariance* kv) const {
  http::ResponseParser parser(HttpRequestFramer::lenient_options());
  parser.feed(unit.data);
  auto msgs = parser.take();
  if (msgs.size() != 1) {
    // Unparseable: compare raw bytes as lines.
    return split_lines(unit.data);
  }
  http::Response& resp = msgs[0];
  std::vector<std::string> lines;
  lines.push_back(resp.version + " " + std::to_string(resp.status) + " " +
                  resp.reason);
  for (const auto& [name, value] : resp.headers.entries()) {
    bool ignored = false;
    if (kv) {
      for (const auto& ign : kv->http_ignore_headers)
        if (iequals(name, ign)) ignored = true;
    }
    if (!ignored) lines.push_back(name + ": " + value);
  }
  // Body: decode content-coding, canonicalise JSON, then split to lines.
  Bytes body = resp.body;
  auto enc = resp.headers.get("Content-Encoding");
  if (enc && iequals(*enc, "xz77")) {
    auto decoded = http::xz77_decompress(body);
    if (decoded) body = std::move(*decoded);
    else lines.push_back("!undecodable-content-coding");
  }
  auto ctype = resp.headers.get("Content-Type");
  if (opts_.canonicalize_json && ctype &&
      ifind(*ctype, "json") != std::string::npos) {
    auto doc = json::parse(body);
    if (doc) {
      lines.push_back(doc->dump());
      return lines;
    }
  }
  auto body_lines = split_lines(body);
  for (auto& l : body_lines) {
    if (kv) {
      bool skip = false;
      for (const auto& pre : kv->http_ignore_line_prefixes)
        if (starts_with(l, pre)) skip = true;
      if (skip) continue;
    }
    lines.push_back(std::move(l));
  }
  return lines;
}

DiffOutcome HttpPlugin::compare(const std::vector<Unit>& units,
                                const CompareContext& ctx) const {
  std::string reason;
  if (!kinds_match(units, &reason)) return {true, reason};
  std::vector<std::vector<std::string>> lines;
  lines.reserve(units.size());
  for (const auto& u : units) lines.push_back(comparable_lines(u, ctx.variance));
  NoiseMask mask;
  if (ctx.filter_pair && units.size() >= 3) {
    mask = build_noise_mask(lines[0], lines[1]);
  } else {
    mask.lines.resize(lines[0].size());  // exact compare
  }
  for (size_t i = 1; i < units.size(); ++i) {
    auto bad = masked_compare(lines[0], lines[i], mask);
    if (bad) return {true, strformat("instance %zu: %s", i, bad->c_str())};
  }
  return {};
}

Bytes HttpPlugin::on_forward_downstream(const std::vector<Unit>& units,
                                        const CompareContext& ctx) const {
  // Harvest ephemeral tokens (CSRF, session ids): alphanumeric runs >= 10
  // chars that differ across ALL instances (paper §IV-B3).
  if (opts_.handle_ephemeral_state && ctx.session && units.size() >= 2) {
    std::vector<std::vector<std::string>> lines;
    for (const auto& u : units)
      lines.push_back(comparable_lines(u, ctx.variance));
    for (auto& token : detect_ephemeral_tokens(lines)) {
      ctx.session->tokens[token.per_instance[0]] =
          std::move(token.per_instance);
    }
  }
  return units[0].data;
}

Bytes HttpPlugin::rewrite_for_instance(const Unit& unit, size_t instance,
                                       const CompareContext& ctx) const {
  if (!opts_.handle_ephemeral_state || !ctx.session ||
      ctx.session->tokens.empty())
    return unit.data;
  // Find tokens present in this request.
  bool any = false;
  for (const auto& [canonical, _] : ctx.session->tokens) {
    if (unit.data.find(canonical) != Bytes::npos) {
      any = true;
      break;
    }
  }
  if (!any) return unit.data;

  // Re-frame so Content-Length stays correct if token lengths differ.
  http::RequestParser parser(HttpRequestFramer::lenient_options());
  parser.feed(unit.data);
  auto msgs = parser.take();
  std::vector<std::string> used;
  Bytes out;
  if (msgs.size() == 1) {
    http::Request& req = msgs[0];
    for (const auto& [canonical, per_instance] : ctx.session->tokens) {
      const std::string& mine = per_instance[instance];
      if (req.body.find(canonical) != Bytes::npos ||
          req.target.find(canonical) != std::string::npos) {
        req.body = replace_all(req.body, canonical, mine);
        req.target = replace_all(req.target, canonical, mine);
        used.push_back(canonical);
      }
      http::HeaderMap rewritten;
      bool header_hit = false;
      for (const auto& [name, value] : req.headers.entries()) {
        if (value.find(canonical) != std::string::npos) {
          rewritten.add(name, replace_all(value, canonical, mine));
          header_hit = true;
        } else {
          rewritten.add(name, value);
        }
      }
      if (header_hit) {
        req.headers = std::move(rewritten);
        used.push_back(canonical);
      }
    }
    req.headers.set("Content-Length", std::to_string(req.body.size()));
    out = req.to_bytes();
  } else {
    // Could not re-frame: raw replacement (token lengths match in all our
    // generators, so Content-Length is preserved).
    out = unit.data;
    for (const auto& [canonical, per_instance] : ctx.session->tokens) {
      if (out.find(canonical) != Bytes::npos) {
        out = replace_all(out, canonical, per_instance[instance]);
        used.push_back(canonical);
      }
    }
  }
  // "Because they are ephemeral, tokens are deleted after forwarding" —
  // once the LAST instance's copy was rewritten.
  if (ctx.session->delete_tokens_after_use &&
      instance + 1 == ctx.session->n_instances) {
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    for (const auto& c : used) ctx.session->tokens.erase(c);
  }
  return out;
}

Bytes HttpPlugin::intervention_response() const {
  http::Response resp = http::make_response(
      403,
      "<html><head><title>RDDR</title></head><body>"
      "<h1>RDDR intervened</h1>"
      "<p>The replicated instances of this service disagreed about the "
      "response to your request. The connection has been closed to prevent "
      "a potential information leak.</p></body></html>");
  resp.headers.set("Connection", "close");
  return resp.to_bytes();
}

Bytes HttpPlugin::overload_response() const {
  http::Response resp = http::make_response(
      503,
      "<html><head><title>RDDR</title></head><body>"
      "<h1>503 Service Unavailable</h1>"
      "<p>The front tier is at capacity; the request was shed before "
      "reaching the service. Retry shortly.</p></body></html>");
  resp.headers.set("Connection", "close");
  resp.headers.set("Retry-After", "1");
  return resp.to_bytes();
}

// ---------- PgPlugin ----------

std::unique_ptr<StreamFramer> PgPlugin::make_framer(Direction dir) const {
  return std::make_unique<PgFramer>(dir == Direction::kClientToServer);
}

DiffOutcome PgPlugin::compare(const std::vector<Unit>& units,
                              const CompareContext& ctx) const {
  std::string reason;
  if (!kinds_match(units, &reason)) return {true, reason};
  const std::string& kind = units[0].kind;
  const KnownVariance* kv = ctx.variance;

  if (kind == "pg:K" && (!kv || kv->pg_ignore_backend_key)) {
    return {};  // BackendKeyData is always instance-specific
  }
  if (kind == "pg:S") {
    // ParameterStatus: names must agree; configured names may vary.
    std::vector<std::string> names;
    for (const auto& u : units) {
      ByteView payload = pg_payload(u);
      size_t nul = payload.find('\0');
      names.emplace_back(nul == ByteView::npos ? std::string(payload)
                                               : std::string(payload.substr(0, nul)));
    }
    for (size_t i = 1; i < names.size(); ++i)
      if (names[i] != names[0])
        return {true, "ParameterStatus name mismatch: " + names[0] + " vs " +
                          names[i]};
    if (kv) {
      for (const auto& ign : kv->pg_ignore_params)
        if (names[0] == ign) return {};
    }
    return compare_blobs(units, ctx.filter_pair, "ParameterStatus");
  }
  if (kind == "pg:Q") {
    // Query merge (outgoing proxy): compare SQL text so divergence reasons
    // are readable ("...WHERE id = ''' OR ..." beats raw frame bytes).
    std::vector<Unit> sql(units.size());
    for (size_t i = 0; i < units.size(); ++i) {
      auto q = pg::parse_query(pg_payload(units[i]));
      sql[i].kind = units[i].kind;
      sql[i].data = q ? *q : units[i].data;
    }
    return compare_blobs(sql, ctx.filter_pair, "Query SQL");
  }
  return compare_blobs(units, ctx.filter_pair,
                       ("message " + pg::type_name(kind.size() > 3 ? kind[3] : '?'))
                           .c_str());
}

Bytes PgPlugin::intervention_response() const {
  return pg::build_error("RDDRX",
                         "RDDR intervened: instance responses diverged; "
                         "connection aborted to prevent information leak");
}

Bytes PgPlugin::overload_response() const {
  return pg::build_error("53300",
                         "RDDR front tier at capacity: connection shed "
                         "before reaching the instances; retry shortly");
}

Bytes PgPlugin::resync_preamble() const {
  // The journal holds mid-session Query units; a fresh replay connection
  // needs the handshake the original client performed long ago.
  return pg::build_startup({{"user", "postgres"}, {"database", "app"}});
}

bool PgPlugin::replayable(const Unit& unit) const {
  // A client that handshakes or disconnects while an instance is away
  // must not inject a second startup (which desyncs pgwire framing) or a
  // Terminate (which would cut the replay stream short) mid-replay.
  return unit.kind != "pg:startup" && unit.kind != "pg:X";
}

// ---------- JsonLinesPlugin ----------

std::unique_ptr<StreamFramer> JsonLinesPlugin::make_framer(Direction) const {
  return std::make_unique<LineFramer>();
}

DiffOutcome JsonLinesPlugin::compare(const std::vector<Unit>& units,
                                     const CompareContext& ctx) const {
  std::string reason;
  if (!kinds_match(units, &reason)) return {true, reason};
  // Canonicalise each document; malformed docs compare as raw bytes.
  std::vector<Unit> canon(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    auto doc = json::parse(trim(units[i].data));
    canon[i].kind = units[i].kind;
    canon[i].data = doc ? doc->dump() : units[i].data;
  }
  return compare_blobs(canon, ctx.filter_pair, "json document");
}

}  // namespace rddr::core
