// Scale-out front tier: sharded RDDR pools behind one public address.
//
// A single incoming/outgoing proxy pair is the throughput ceiling of the
// paper's deployment — every compared unit crosses one pump loop. The
// Frontier removes that ceiling horizontally: it owns S independent
// NVersionDeployment shards (each a full proxy pair fronting its own
// N-version pool, or the shared pool) and routes accepted client
// connections across them with deterministic consistent hashing, so one
// session always lands on one shard and a same-seed run replays
// byte-identically.
//
// Overload handling (DESIGN.md "Scale-out & overload"):
//  * Admission control — a per-shard token bucket (AdmissionOptions::
//    rate_per_s/burst) bounds the session-admission rate.
//  * Bounded queueing — connections that cannot be admitted immediately
//    wait in a per-shard queue of at most `queue_limit`; arrival at a full
//    queue sheds instantly.
//  * Load shedding — a queued connection not admitted within
//    `shed_deadline` is rejected fast and protocol-correctly: the client
//    receives ProtocolPlugin::overload_response() (e.g. SQLSTATE 53300,
//    HTTP 503) instead of a hang or a raw close.
//  * Backpressure — admission consults the shard's live load
//    (active_sessions vs max_sessions, IncomingProxy::pending_units vs
//    queued_units_watermark), so a saturated pool slows admission instead
//    of growing unbounded internal queues; IncomingProxy::Config::
//    on_load_change wakes the frontier when load drops.
//  * Accept-queue depth — AdmissionOptions::accept_queue bounds the
//    simulated kernel backlog of the public listener
//    (Network::set_accept_queue_depth); overflow is refused before the
//    frontier ever sees the connection.
//
// Metrics (under "<name>."): offered, admitted, shed, shed_deadline,
// shed_queue_full, shed_unroutable counters; queued_ms histogram
// (admission-queue wait of admitted connections); per-shard gauges
// s<k>.active_sessions and s<k>.admission_queue. With a Tracer, every
// shed connection records a "shed" span tagged with the reason and shard.
//
// Build one via NVersionDeployment::Builder:
//
//   auto front = core::NVersionDeployment::Builder()
//                    .listen("svc:80")
//                    .versions({"a:80", "b:80", "c:80"})
//                    .plugin(std::make_shared<core::HttpPlugin>())
//                    .shards(4)
//                    .admission({.rate_per_s = 4000, .queue_limit = 64})
//                    .build_frontier(net, host);
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "rddr/deployment.h"

namespace rddr::core {

/// FNV-1a 64-bit with an avalanche finalizer — the frontier's stable
/// session-key hash. Exposed so tests can predict ring placement.
uint64_t hash_key(const std::string& key);

/// Consistent-hash ring over shard indices with virtual nodes. Routing is
/// a pure function of (key, shard count, enabled set): the same key maps
/// to the same shard across runs, and disabling one shard moves only the
/// ~1/S of keys that hashed to it (the classic consistent-hash property).
class ConsistentHash {
 public:
  explicit ConsistentHash(size_t shards, size_t vnodes_per_shard = 64);

  size_t shards() const { return nshards_; }

  /// Routes `key` to its shard, walking the ring clockwise past any
  /// disabled shards. Returns shards() when every shard is disabled.
  size_t route(const std::string& key) const;

  /// Marks a shard (un)routable; route() skips disabled shards.
  void set_shard_enabled(size_t shard, bool enabled);
  bool shard_enabled(size_t shard) const { return enabled_.at(shard); }

 private:
  size_t nshards_;
  std::vector<bool> enabled_;
  /// (point, shard), sorted by point.
  std::vector<std::pair<uint64_t, size_t>> ring_;
};

/// The front tier itself. Usually constructed via
/// NVersionDeployment::Builder::build_frontier.
class Frontier {
 public:
  struct Options {
    /// Public address clients dial (the only listener the tier exposes).
    std::string listen_address;
    std::string name = "frontier";
    AdmissionOptions admission;
    /// Plugin whose overload_response() shed connections receive (shared
    /// with the shards in Builder-built frontiers).
    std::shared_ptr<ProtocolPlugin> plugin;
    /// One fully resolved deployment per shard; each incoming config must
    /// have an empty listen_address (shards are fed by direct handoff).
    std::vector<NVersionDeployment::Options> shards;
    /// Observability sinks (optional, not owned).
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    /// Non-empty (one entry per shard) = islands mode: the frontier
    /// installs a dial-time island router on `listen_address` that picks
    /// the shard from ConnectMeta::source and lands the server half of
    /// the connection on that shard's island; on_accept then trusts the
    /// recorded route hint, so every shard's admission queue, tokens and
    /// handoff run on the shard's own island. Filled by
    /// Builder::islands(); see that knob for the determinism contract.
    std::vector<IslandId> shard_islands;
  };

  /// Shard k's proxies run on shard_hosts[k % shard_hosts.size()].
  Frontier(sim::Network& net, std::vector<sim::Host*> shard_hosts,
           Options options);
  ~Frontier();
  Frontier(const Frontier&) = delete;
  Frontier& operator=(const Frontier&) = delete;

  size_t shard_count() const { return shards_.size(); }
  NVersionDeployment& shard(size_t k) { return *shards_.at(k); }
  const NVersionDeployment& shard(size_t k) const { return *shards_.at(k); }

  /// Island shard k's column is pinned to (0 outside islands mode).
  /// Observers that sample a shard's live state mid-run (health, session
  /// counters) must schedule onto this island — a cross-island read is
  /// tear-free but sees a window-dependent snapshot.
  IslandId shard_island(size_t k) const {
    return opts_.shard_islands.empty() ? 0 : opts_.shard_islands.at(k);
  }

  /// Shard `key` would route to right now (tests / operators).
  size_t route_of(const std::string& key) const;

  /// Administratively (un)drains one shard: disabled shards receive no
  /// new sessions; established sessions keep running.
  void set_shard_enabled(size_t k, bool enabled);

  /// A shard is routable when enabled and its pool has a healthy
  /// instance.
  bool shard_available(size_t k) const;

  /// Frontier-level counters only (offered/admitted/shed live here; the
  /// shard proxies' counters are separate).
  ProxyStats stats() const { return counters_.snapshot(); }

  /// Frontier counters plus every shard deployment's aggregate.
  ProxyStats aggregate_stats() const;

  /// Total divergences across all shards.
  uint64_t divergences() const;

  /// Registry the frontier publishes into (configured one, else private).
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Connections currently parked in shard k's admission queue.
  size_t admission_queue_len(size_t k) const {
    return shard_state_.at(k).queue.size();
  }

 private:
  struct Waiting {
    sim::ConnPtr conn;
    sim::Time enqueued = 0;
    uint64_t shed_event = 0;  // pending deadline event (0 = none)
    uint64_t seq = 0;         // connection id; keys queue-entry lookup
  };
  struct ShardState {
    double tokens = 0;
    sim::Time last_refill = 0;
    std::deque<Waiting> queue;
    uint64_t token_wake_event = 0;  // pending refill-drain event
    bool drain_scheduled = false;   // coalesces on_load_change wakeups
    obs::Gauge* active_sessions = nullptr;
    obs::Gauge* admission_queue = nullptr;
  };

  void on_accept(sim::ConnPtr conn);
  /// Shard for a connect-time key; shared by route_of() and the island
  /// router (single dialing island assumed in islands mode, so the lazy
  /// ring sync stays unracy).
  size_t route_for_key(const std::string& key) const;
  /// Consumes a token and admits, or returns false (bucket empty /
  /// backpressured shard).
  bool try_admit(size_t k);
  void admit(size_t k, Waiting w);
  void shed(Waiting& w, const std::string& reason, obs::Counter* reason_ctr,
            int shard);
  void refill(size_t k);
  /// Admits from shard k's queue while tokens and backpressure allow;
  /// re-arms the token wakeup when the queue stays non-empty.
  void drain(size_t k);
  void schedule_drain(size_t k);
  void update_gauges(size_t k);
  /// Virtual time until the bucket holds >= 1 token (rate-limited shards).
  sim::Time time_to_next_token(const ShardState& st) const;

  sim::Network& net_;
  Options opts_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  ProxyCounters counters_;
  obs::Counter* offered_ = nullptr;
  obs::Counter* shed_deadline_ = nullptr;
  obs::Counter* shed_queue_full_ = nullptr;
  obs::Counter* shed_unroutable_ = nullptr;
  std::vector<std::unique_ptr<NVersionDeployment>> shards_;
  /// Routing is (admin flag && pool health); the flags are synced into the
  /// ring lazily on each route, hence mutable.
  mutable ConsistentHash router_;
  std::vector<bool> admin_enabled_;
  std::vector<ShardState> shard_state_;
};

}  // namespace rddr::core
