// Shared proxy configuration and the registry-backed stats surface.
//
// `ProxyOptions` factors the fields the incoming and outgoing proxies
// used to duplicate (plugin, variance, degradation policy, health knobs,
// CPU model, observability sinks); each proxy's `Config` extends it with
// the fields specific to its direction. `ProxyStats` remains as a plain
// compatibility view over the registry-backed counters that now do the
// actual counting (see ProxyCounters).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rddr/diff_engine.h"
#include "rddr/divergence.h"
#include "rddr/health.h"
#include "rddr/plugin.h"

namespace rddr::core {

/// Admission-control knobs for a front tier (Frontier) shard. One
/// canonical spelling each; all zeros mean "admit everything" (the
/// pre-scale-out behaviour).
struct AdmissionOptions {
  /// Token-bucket admission rate in sessions/second (0 = unlimited).
  double rate_per_s = 0;
  /// Bucket depth: how many sessions may be admitted in a burst.
  double burst = 32;
  /// Bounded per-shard queue of connections waiting for admission; a
  /// connection arriving at a full queue is shed immediately.
  size_t queue_limit = 64;
  /// A queued connection not admitted within this deadline is shed with
  /// the plugin's overload response (fast, protocol-correct rejection).
  sim::Time shed_deadline = 5 * sim::kMillisecond;
  /// netsim listener accept-queue depth for the public address (0 =
  /// unbounded); overflow is refused at the (simulated) kernel, before
  /// the proxy ever sees the connection.
  size_t accept_queue = 0;
  /// Backpressure: stop admitting to a shard holding this many concurrent
  /// sessions (0 = unbounded).
  size_t max_sessions = 0;
  /// Backpressure: stop admitting to a shard whose proxies have this many
  /// response units queued but not yet compared (0 = off). A saturated
  /// pool therefore slows admission instead of growing unbounded queues.
  size_t queued_units_watermark = 0;
};

/// Configuration shared by both RDDR proxies. Defaults are the paper's
/// strict deployment with the seed repo's CPU model.
struct ProxyOptions {
  std::string name = "rddr";
  std::shared_ptr<ProtocolPlugin> plugin;
  /// Manually configured benign divergence (paper §IV-B4).
  KnownVariance variance;
  /// Instances 0 and 1 are an identical-image filter pair (§IV-B2).
  bool filter_pair = false;
  /// What happens when instances fail or disagree (§IV-D). Default: the
  /// paper's unanimity-or-intervene.
  DegradationPolicy degradation = DegradationPolicy::kStrict;
  /// Quarantine threshold and reconnect backoff (ignored under kStrict).
  /// `health.n_instances` is filled by the proxy from its instance list.
  HealthTracker::Options health;
  /// Per-unit wait for lagging instances; 0 (default) disables the
  /// timeout, reproducing the paper's §IV-D DoS limitation. Canonical
  /// spelling for what the incoming proxy called `instance_timeout`.
  sim::Time unit_timeout = 0;
  /// Idle-session read timeout (incoming proxy): a session that makes no
  /// protocol progress — no completed client unit framed and no response
  /// forwarded — for this long is shed with the plugin's protocol-correct
  /// overload_response() instead of pinning a session slot forever.
  /// Progress-based on purpose: a slowloris sender trickling one byte per
  /// tick never completes a unit, so byte-level activity must not reset
  /// the clock. 0 (default) disables the timeout.
  sim::Time idle_timeout = 0;
  /// Legacy per-proxy record hook. Superseded by the AttributionSink
  /// path: every record now flows through the proxy's DivergenceBus —
  /// subscribe with DivergenceBus::subscribe_records (or
  /// NVersionDeployment::Builder::on_divergence, which does it for the
  /// whole deployment). Still honoured when set; removed next release.
  [[deprecated("subscribe to the DivergenceBus record stream instead")]]
  std::function<void(const DivergenceRecord&)> on_divergence;
  /// Targeted path quarantine (incoming proxy): after this many
  /// interventions attributed to one call site (the leaf frame of the
  /// session's execution index), further sessions arriving *from that
  /// call site* are refused with the plugin's intervention response —
  /// quarantining one call path through the graph instead of a whole
  /// instance. Only indexed (nested) flows are ever path-blocked: root
  /// edge sessions share the proxy's own listen site, which is exempt.
  /// 0 (default) disables.
  uint32_t path_quarantine_threshold = 0;
  /// Batched diff-and-denoise engine knobs (SIMD kernel selection, arena
  /// sizing). Every proxy — and every frontier shard, which copies its
  /// shard options wholesale — owns one DiffEngine configured from this.
  DiffEngineOptions diff;
  /// CPU model for the de-noise+diff work, charged to the proxy host.
  double cpu_per_unit = 15e-6;
  double cpu_per_byte = 2e-9;
  int64_t base_memory_bytes = 24LL << 20;
  /// Observability sinks (optional, not owned). With `metrics` unset the
  /// proxy keeps a private registry; with `tracer` unset no spans are
  /// recorded.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Scale-out: number of independent proxy shards a Frontier deploys in
  /// front of the pool(s). 1 (default) is the paper's single proxy pair;
  /// the plain proxies ignore this field.
  size_t shards = 1;
  /// Admission control / load shedding for the front tier (Frontier).
  /// The plain proxies ignore this field.
  AdmissionOptions admission;

  // Explicitly-defaulted special members: the implicitly-defined ones
  // would trip -Werror=deprecated-declarations on the legacy
  // `on_divergence` member at every copy site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ProxyOptions() = default;
  ProxyOptions(const ProxyOptions&) = default;
  ProxyOptions(ProxyOptions&&) = default;
  ProxyOptions& operator=(const ProxyOptions&) = default;
  ProxyOptions& operator=(ProxyOptions&&) = default;
  ~ProxyOptions() = default;
#pragma GCC diagnostic pop
};

/// Element-wise counter snapshot of one proxy (or, via
/// NVersionDeployment::aggregate_stats, a whole deployment). Kept as the
/// stable stats API; values are read out of the metrics registry.
struct ProxyStats {
  uint64_t sessions = 0;
  uint64_t units_replicated = 0;  // client->instances units
  uint64_t units_compared = 0;    // instance->client comparisons
  uint64_t divergences = 0;
  uint64_t timeouts = 0;
  uint64_t idle_sheds = 0;  // sessions shed by the idle read timeout
  uint64_t passthrough_sessions = 0;
  uint64_t signature_blocks = 0;  // requests refused by known signature
  uint64_t path_blocks = 0;       // sessions refused by path quarantine
  // Availability-path counters (fault tolerance, §IV-D limitations):
  uint64_t instance_unreachable = 0;  // refused connects / lost instances
  uint64_t quarantines = 0;           // instances moved to quarantine
  uint64_t reconnects = 0;            // quarantined instances re-admitted
  uint64_t degraded_sessions = 0;     // sessions served by < N instances
  uint64_t quorum_outvotes = 0;       // divergent minorities outvoted
  // Recovery-path counters (instance replacement + resync):
  uint64_t resyncs = 0;               // state transfers started
  uint64_t replacements = 0;          // instances swapped for fresh replicas
  uint64_t journal_replayed_requests = 0;  // units replayed after transfer
  uint64_t pages_shipped = 0;         // dirty pages in incremental resyncs
  uint64_t wal_bytes_replayed = 0;    // WAL tail bytes in incremental resyncs
  // Front-tier counters (zero unless a Frontier fronts the proxies):
  uint64_t admitted = 0;  // connections passed through admission control
  uint64_t shed = 0;      // connections rejected by the front tier

  ProxyStats& operator+=(const ProxyStats& o) {
    sessions += o.sessions;
    units_replicated += o.units_replicated;
    units_compared += o.units_compared;
    divergences += o.divergences;
    timeouts += o.timeouts;
    idle_sheds += o.idle_sheds;
    passthrough_sessions += o.passthrough_sessions;
    signature_blocks += o.signature_blocks;
    path_blocks += o.path_blocks;
    instance_unreachable += o.instance_unreachable;
    quarantines += o.quarantines;
    reconnects += o.reconnects;
    degraded_sessions += o.degraded_sessions;
    quorum_outvotes += o.quorum_outvotes;
    resyncs += o.resyncs;
    replacements += o.replacements;
    journal_replayed_requests += o.journal_replayed_requests;
    pages_shipped += o.pages_shipped;
    wal_bytes_replayed += o.wal_bytes_replayed;
    admitted += o.admitted;
    shed += o.shed;
    return *this;
  }
};

/// The registry handles behind one proxy's ProxyStats view, resolved once
/// at proxy construction under "<name>." so a shared registry keeps the
/// per-proxy series apart. Incrementing is one 64-bit add.
struct ProxyCounters {
  obs::Counter* sessions = nullptr;
  obs::Counter* units_replicated = nullptr;
  obs::Counter* units_compared = nullptr;
  obs::Counter* divergences = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* idle_sheds = nullptr;
  obs::Counter* passthrough_sessions = nullptr;
  obs::Counter* signature_blocks = nullptr;
  obs::Counter* path_blocks = nullptr;
  obs::Counter* instance_unreachable = nullptr;
  obs::Counter* quarantines = nullptr;
  obs::Counter* reconnects = nullptr;
  obs::Counter* degraded_sessions = nullptr;
  obs::Counter* quorum_outvotes = nullptr;
  obs::Counter* resyncs = nullptr;
  obs::Counter* replacements = nullptr;
  obs::Counter* journal_replayed_requests = nullptr;
  obs::Counter* pages_shipped = nullptr;
  obs::Counter* wal_bytes_replayed = nullptr;
  obs::Counter* admitted = nullptr;
  obs::Counter* shed = nullptr;
  /// Virtual-time cost of each de-noise+diff batch, in milliseconds.
  obs::Histogram* compare_ms = nullptr;
  /// Admission-queue wait of each admitted connection, in milliseconds
  /// (only a Frontier observes into this).
  obs::Histogram* queued_ms = nullptr;

  void bind(obs::MetricsRegistry& reg, const std::string& prefix);
  ProxyStats snapshot() const;
};

}  // namespace rddr::core
