// Per-instance health tracking and degradation policy (paper §IV-D).
//
// The paper's RDDR assumes all N instances stay healthy: a crashed
// instance is indistinguishable from an attack and unanimity turns one
// failure into a total outage. This module adds the missing availability
// half: instances accumulate consecutive failures (refused connects,
// timeouts, framing errors, unexpected closes) and move to `quarantined`
// once a threshold is crossed; a bounded exponential-backoff reconnect
// schedule (jittered via common/rng so probes stay deterministic per seed)
// re-admits an instance that comes back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/simulator.h"

namespace rddr::core {

/// What the proxies do when instances fail or disagree.
enum class DegradationPolicy {
  /// The paper's behaviour: unanimity or intervention. One crashed
  /// instance kills every session (§IV-D limitation).
  kStrict,
  /// Majority-of-healthy vote: a single divergent instance is outvoted
  /// and quarantined, the agreed bytes are forwarded; sessions continue
  /// as long as >= 2 healthy instances remain (fail closed below that).
  kQuorum,
  /// Like kQuorum, but when fewer than 2 healthy instances remain the
  /// session degrades to uncompared passthrough-with-alert instead of
  /// failing: availability over integrity, loudly counted.
  kFailOpen,
};

const char* to_string(DegradationPolicy policy);

/// Tracks health state for the N instances behind one proxy.
class HealthTracker {
 public:
  enum class State {
    kHealthy,      // participating in sessions
    kQuarantined,  // excluded; reconnect probes pending
    kResyncing,    // reachable again; state transfer in progress, still
                   // excluded from new sessions until readmit()
    kDead,         // reconnect attempts exhausted; permanently excluded
  };

  struct Options {
    size_t n_instances = 0;
    /// Consecutive failures before an instance is quarantined.
    uint32_t failure_threshold = 1;
    /// Reconnect backoff: base * 2^attempt, capped, +/- jitter.
    sim::Time reconnect_base_delay = 100 * sim::kMillisecond;
    sim::Time reconnect_max_delay = 10 * sim::kSecond;
    /// Probe attempts before giving an instance up for dead (0 = never).
    uint32_t reconnect_max_attempts = 10;
    /// Fractional jitter on each backoff delay (0.2 = +/-20%).
    double reconnect_jitter = 0.2;
    uint64_t seed = 0x5eedULL;
  };

  explicit HealthTracker(Options options);

  State state(size_t i) const { return inst_.at(i).state; }
  bool is_healthy(size_t i) const { return state(i) == State::kHealthy; }
  /// O(1): a cached count maintained on every transition. Read with a
  /// relaxed atomic so cross-island observers (status collectors) see a
  /// torn-free value without taking a dependency on the owner's island.
  size_t healthy_count() const;
  size_t n_instances() const { return inst_.size(); }

  /// Records one failure. Returns true when this crossed the threshold
  /// and the instance just moved kHealthy -> kQuarantined.
  bool record_failure(size_t i);

  /// Resets the consecutive-failure counter (a healthy interaction).
  void record_success(size_t i);

  /// Forces immediate quarantine (e.g. the instance was outvoted by the
  /// quorum — decisive evidence, no threshold). Returns true if the
  /// instance was healthy before.
  bool quarantine(size_t i);

  /// Successful reconnect: quarantined/resyncing -> healthy, counters
  /// reset.
  void readmit(size_t i);

  /// Reachable but not yet trusted: quarantined -> resyncing (state
  /// transfer runs before admission). Returns false unless quarantined.
  bool begin_resync(size_t i);

  /// The transfer failed or the journal overflowed: resyncing ->
  /// quarantined, so the backoff probe schedule takes over again.
  void resync_failed(size_t i);

  /// Instance i was replaced by a fresh replica: any state (dead
  /// included) -> quarantined with all counters reset, ready for the
  /// probe -> resync -> readmit pipeline.
  void reset_replaced(size_t i);

  /// Next backoff delay for instance i; increments its attempt counter.
  sim::Time next_backoff(size_t i);

  /// True when the attempt budget is spent; mark_dead retires the
  /// instance so probing stops.
  bool attempts_exhausted(size_t i) const;
  void mark_dead(size_t i);
  uint32_t attempts(size_t i) const { return inst_.at(i).attempts; }

 private:
  struct Instance {
    State state = State::kHealthy;
    uint32_t consecutive_failures = 0;
    uint32_t attempts = 0;  // reconnect probes issued this quarantine
  };

  void set_state(size_t i, State next);

  Options options_;
  Rng rng_;
  std::vector<Instance> inst_;
  size_t healthy_ = 0;  // cached kHealthy count (see healthy_count())
};

}  // namespace rddr::core
