#include "rddr/health.h"

#include <algorithm>
#include <atomic>

namespace rddr::core {

const char* to_string(DegradationPolicy policy) {
  switch (policy) {
    case DegradationPolicy::kStrict: return "strict";
    case DegradationPolicy::kQuorum: return "quorum";
    case DegradationPolicy::kFailOpen: return "fail-open";
  }
  return "?";
}

HealthTracker::HealthTracker(Options options)
    : options_(options), rng_(options.seed) {
  inst_.resize(options_.n_instances);
  healthy_ = inst_.size();
}

size_t HealthTracker::healthy_count() const {
  return std::atomic_ref<const size_t>(healthy_).load(
      std::memory_order_relaxed);
}

void HealthTracker::set_state(size_t i, State next) {
  auto& in = inst_.at(i);
  if (in.state == next) return;
  size_t n = healthy_;
  if (in.state == State::kHealthy) --n;
  if (next == State::kHealthy) ++n;
  in.state = next;
  if (n != healthy_)
    std::atomic_ref<size_t>(healthy_).store(n, std::memory_order_relaxed);
}

bool HealthTracker::record_failure(size_t i) {
  auto& in = inst_.at(i);
  if (in.state != State::kHealthy) return false;
  ++in.consecutive_failures;
  if (in.consecutive_failures >= options_.failure_threshold) {
    set_state(i, State::kQuarantined);
    in.attempts = 0;
    return true;
  }
  return false;
}

void HealthTracker::record_success(size_t i) {
  inst_.at(i).consecutive_failures = 0;
}

bool HealthTracker::quarantine(size_t i) {
  auto& in = inst_.at(i);
  if (in.state != State::kHealthy) return false;
  set_state(i, State::kQuarantined);
  in.attempts = 0;
  return true;
}

void HealthTracker::readmit(size_t i) {
  auto& in = inst_.at(i);
  set_state(i, State::kHealthy);
  in.consecutive_failures = 0;
  in.attempts = 0;
}

bool HealthTracker::begin_resync(size_t i) {
  auto& in = inst_.at(i);
  if (in.state != State::kQuarantined) return false;
  set_state(i, State::kResyncing);
  return true;
}

void HealthTracker::resync_failed(size_t i) {
  auto& in = inst_.at(i);
  if (in.state == State::kResyncing) set_state(i, State::kQuarantined);
}

void HealthTracker::reset_replaced(size_t i) {
  auto& in = inst_.at(i);
  set_state(i, State::kQuarantined);
  in.consecutive_failures = 0;
  in.attempts = 0;
}

sim::Time HealthTracker::next_backoff(size_t i) {
  auto& in = inst_.at(i);
  uint32_t attempt = in.attempts++;
  // base * 2^attempt, capped; shift guarded so Time never overflows.
  sim::Time delay = options_.reconnect_base_delay;
  for (uint32_t k = 0; k < attempt && delay < options_.reconnect_max_delay;
       ++k)
    delay *= 2;
  delay = std::min(delay, options_.reconnect_max_delay);
  if (options_.reconnect_jitter > 0) {
    double f = 1.0 + options_.reconnect_jitter * (2 * rng_.uniform01() - 1);
    delay = std::max<sim::Time>(1, static_cast<sim::Time>(
                                       static_cast<double>(delay) * f));
  }
  return delay;
}

bool HealthTracker::attempts_exhausted(size_t i) const {
  return options_.reconnect_max_attempts > 0 &&
         inst_.at(i).attempts >= options_.reconnect_max_attempts;
}

void HealthTracker::mark_dead(size_t i) {
  set_state(i, State::kDead);
}

}  // namespace rddr::core
