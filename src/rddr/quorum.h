// Majority vote over per-instance protocol units (DegradationPolicy::kQuorum).
//
// The strict diff is binary: any mismatch is an intervention. The quorum
// vote asks a finer question — is there a single outlier the majority can
// outvote? It reuses the protocol plugin's own compare (so de-noising and
// known-variance rules still apply) rather than raw byte equality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rddr/plugin.h"

namespace rddr::core {

struct QuorumVote {
  /// All units agreed under the plugin's compare.
  bool unanimous = false;
  /// Unanimous, or a strict majority agreed with exactly one outlier.
  bool agreed = false;
  /// Index (into `units`) of the outvoted instance; SIZE_MAX when none.
  size_t outlier = SIZE_MAX;
  /// Divergence reason when !agreed (the full-group compare's reason).
  std::string reason;
};

/// Votes over units[0..n). With n >= 3 and exactly one instance whose
/// removal makes the remainder agree, that instance is the outlier and the
/// vote carries; ambiguous disagreement (no single outlier, or several
/// candidates) fails the vote. The filter pair (indices 0/1) is only used
/// for masking when both of its members remain in the majority.
[[deprecated(
    "use DiffEngine::compare(..., VoteMode::kQuorum) — one batched call "
    "instead of N+1 full compares (rddr/diff_engine.h)")]]
QuorumVote quorum_vote(const ProtocolPlugin& plugin,
                       const std::vector<Unit>& units,
                       const CompareContext& ctx);

}  // namespace rddr::core
