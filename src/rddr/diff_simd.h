// Runtime-dispatched SIMD kernels for the diff-and-denoise data plane.
//
// Three implementations of each primitive — portable scalar, SSE2 and
// AVX2 — selected at runtime from CPUID (or pinned via the RDDR_SIMD
// environment variable / the DiffEngineOptions::simd knob). All levels
// are bit-identical by contract: tests/rddr_diff_engine_test.cc runs a
// seeded differential property suite asserting identical mismatch
// offsets, masks and verdicts across every supported level.
//
// The kernels are byte-exact replacements for the scalar loops the old
// pairwise de-noise implementation used; none changes comparison semantics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace rddr::core::simd {

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* level_name(Level l);

/// Highest level this CPU supports (kScalar on non-x86 builds).
Level best_supported();

/// Maps a knob string ("auto", "scalar", "sse2", "avx2") to a level,
/// clamped to best_supported(). The RDDR_SIMD environment variable, when
/// set, overrides the knob (so CI can pin the path for a whole run).
/// Unknown spellings resolve like "auto".
Level resolve_level(const std::string& knob);

/// First divergence found by the interleaved N-way scan.
struct NwayHit {
  size_t offset = 0;          // byte offset of the first divergence
  size_t instance = SIZE_MAX;  // candidate index (SIZE_MAX: all equal)
};

/// One level's kernel table. Engines hold a pointer to the table they
/// resolved at construction, so two engines in one process can run
/// different levels (the differential tests rely on this).
struct Ops {
  Level level;
  /// First index in [0,n) where a and b differ; n when equal.
  size_t (*mismatch)(const char* a, const char* b, size_t n);
  /// Longest common suffix length (<= n) of the n bytes ENDING at a_end
  /// and b_end (exclusive), i.e. scanning backwards.
  size_t (*suffix_len)(const char* a_end, const char* b_end, size_t n);
  /// First index in [0,n) where p is not [0-9A-Za-z]; n when all alnum.
  size_t (*find_non_alnum)(const char* p, size_t n);
  /// Scans cands[0..k) against ref over [0,n) chunk-interleaved (each ref
  /// chunk is loaded once and compared against every candidate before
  /// advancing). Returns the lowest diverging offset; ties broken by the
  /// lowest candidate index. {n, SIZE_MAX} when all k are equal to ref.
  NwayHit (*nway_mismatch)(const char* ref, const char* const* cands,
                           size_t k, size_t n);
};

const Ops& ops(Level l);
/// ops(resolve_level("auto")) — resolved once per process.
const Ops& active_ops();

// ---- thin view-level helpers over a table ----

inline size_t common_prefix(const Ops& o, ByteView a, ByteView b) {
  size_t n = std::min(a.size(), b.size());
  return n == 0 ? 0 : o.mismatch(a.data(), b.data(), n);
}

inline size_t common_suffix(const Ops& o, ByteView a, ByteView b) {
  size_t n = std::min(a.size(), b.size());
  return n == 0 ? 0
               : o.suffix_len(a.data() + a.size(), b.data() + b.size(), n);
}

inline bool equal(const Ops& o, ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  return a.empty() || o.mismatch(a.data(), b.data(), a.size()) == a.size();
}

inline bool all_alnum(const Ops& o, ByteView v) {
  return v.empty() || o.find_non_alnum(v.data(), v.size()) == v.size();
}

}  // namespace rddr::core::simd
