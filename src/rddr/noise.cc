#include "rddr/noise.h"

#include <algorithm>
#include <cctype>

#include "common/strutil.h"

namespace rddr::core {

size_t common_prefix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t common_suffix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[a.size() - 1 - i] == b[b.size() - 1 - i]) ++i;
  return i;
}

NoiseMask build_noise_mask(const std::vector<std::string>& pair_a,
                           const std::vector<std::string>& pair_b) {
  NoiseMask mask;
  if (pair_a.size() != pair_b.size()) {
    mask.structural_noise = true;
    return mask;
  }
  mask.lines.resize(pair_a.size());
  for (size_t i = 0; i < pair_a.size(); ++i) {
    const std::string& a = pair_a[i];
    const std::string& b = pair_b[i];
    if (a == b) continue;
    LineMask lm;
    lm.prefix = common_prefix(a, b);
    lm.suffix = common_suffix(a, b);
    // Prefix and suffix may overlap when one line nearly contains the
    // other; clamp so they describe disjoint regions of the shorter line.
    size_t min_len = std::min(a.size(), b.size());
    if (lm.prefix + lm.suffix > min_len) lm.suffix = min_len - lm.prefix;
    // Widen the noise region to alphanumeric-run boundaries: tokens are
    // alnum runs, and two random tokens can share their first/last
    // characters by chance — without widening, that chance agreement
    // would be enforced on every other instance (a false positive).
    while (lm.prefix > 0 &&
           std::isalnum(static_cast<unsigned char>(a[lm.prefix - 1])))
      --lm.prefix;
    while (lm.suffix > 0 &&
           std::isalnum(static_cast<unsigned char>(a[a.size() - lm.suffix])))
      --lm.suffix;
    mask.lines[i] = lm;
  }
  return mask;
}

std::optional<std::string> masked_compare(
    const std::vector<std::string>& reference,
    const std::vector<std::string>& candidate, const NoiseMask& mask) {
  if (mask.structural_noise) {
    // The pair itself disagreed structurally; per the paper's assumption
    // we can only hold other instances to the same gross shape.
    if (candidate.size() != reference.size())
      return strformat("line count %zu != %zu under structural noise",
                       candidate.size(), reference.size());
    return std::nullopt;
  }
  if (candidate.size() != reference.size())
    return strformat("line count %zu != %zu", candidate.size(),
                     reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const std::string& ref = reference[i];
    const std::string& cand = candidate[i];
    if (!mask.lines[i]) {
      if (cand != ref)
        return strformat("line %zu differs: '%.80s' vs '%.80s'", i,
                         ref.c_str(), cand.c_str());
      continue;
    }
    const LineMask& lm = *mask.lines[i];
    if (cand.size() < lm.prefix + lm.suffix)
      return strformat("line %zu shorter than noise frame", i);
    if (ByteView(cand).substr(0, lm.prefix) !=
        ByteView(ref).substr(0, lm.prefix))
      return strformat("line %zu prefix differs outside noise region", i);
    if (lm.suffix > 0 &&
        ByteView(cand).substr(cand.size() - lm.suffix) !=
            ByteView(ref).substr(ref.size() - lm.suffix))
      return strformat("line %zu suffix differs outside noise region", i);
  }
  return std::nullopt;
}

std::vector<EphemeralToken> detect_ephemeral_tokens(
    const std::vector<std::vector<std::string>>& instance_lines) {
  std::vector<EphemeralToken> out;
  if (instance_lines.size() < 2) return out;
  const size_t n = instance_lines.size();
  const size_t line_count = instance_lines[0].size();
  for (size_t i = 1; i < n; ++i)
    if (instance_lines[i].size() != line_count) return out;

  for (size_t li = 0; li < line_count; ++li) {
    // "Lines that differ across all instances": every instance's line is
    // distinct from every other's.
    bool all_differ = true;
    for (size_t a = 0; a < n && all_differ; ++a)
      for (size_t b = a + 1; b < n && all_differ; ++b)
        if (instance_lines[a][li] == instance_lines[b][li]) all_differ = false;
    if (!all_differ) continue;

    // Character range that differs: common prefix/suffix over ALL lines.
    size_t p = instance_lines[0][li].size();
    size_t s = instance_lines[0][li].size();
    for (size_t a = 1; a < n; ++a) {
      p = std::min(p, common_prefix(instance_lines[0][li],
                                    instance_lines[a][li]));
      s = std::min(s, common_suffix(instance_lines[0][li],
                                    instance_lines[a][li]));
    }
    // Widen to alnum-run boundaries (chance agreement between random
    // tokens must not truncate the captured token).
    const std::string& l0 = instance_lines[0][li];
    while (p > 0 && std::isalnum(static_cast<unsigned char>(l0[p - 1]))) --p;
    while (s > 0 &&
           std::isalnum(static_cast<unsigned char>(l0[l0.size() - s])))
      --s;
    EphemeralToken token;
    token.per_instance.resize(n);
    bool ok = true;
    for (size_t a = 0; a < n && ok; ++a) {
      const std::string& line = instance_lines[a][li];
      size_t sfx = s;
      if (p + sfx > line.size()) {
        if (p > line.size()) {
          ok = false;
          break;
        }
        sfx = line.size() - p;
      }
      // Validate through a view; materialise only accepted tokens (this
      // runs per line on every N-way compare — see BM_DenoiseTokenDetect).
      ByteView candidate = ByteView(line).substr(p, line.size() - p - sfx);
      // Paper's empirically-determined criterion: alphanumeric, >= 10.
      if (candidate.size() < 10) {
        ok = false;
        break;
      }
      for (char c : candidate)
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          ok = false;
          break;
        }
      token.per_instance[a] = std::string(candidate);
    }
    if (ok) out.push_back(std::move(token));
  }
  return out;
}

}  // namespace rddr::core
