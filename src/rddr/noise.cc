// Deprecated pairwise wrappers over the batched diff primitives. The
// algorithms live in rddr/diff_engine.cc + rddr/diff_simd.cc; these
// functions only adapt the old std::vector<std::string> shapes, so the
// two APIs cannot drift apart.
#include "rddr/noise.h"

#include <algorithm>

#include "common/strutil.h"
#include "rddr/diff_engine.h"

namespace rddr::core {

// The definitions themselves must not warn under
// -Werror=deprecated-declarations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

size_t common_prefix(std::string_view a, std::string_view b) {
  return simd::common_prefix(simd::active_ops(), a, b);
}

size_t common_suffix(std::string_view a, std::string_view b) {
  return simd::common_suffix(simd::active_ops(), a, b);
}

NoiseMask build_noise_mask(const std::vector<std::string>& pair_a,
                           const std::vector<std::string>& pair_b) {
  NoiseMask mask;
  if (pair_a.size() != pair_b.size()) {
    mask.structural_noise = true;
    return mask;
  }
  const simd::Ops& ops = simd::active_ops();
  mask.lines.resize(pair_a.size());
  for (size_t i = 0; i < pair_a.size(); ++i) {
    diff::LineMask lm = diff::build_line_mask(pair_a[i], pair_b[i], ops);
    if (lm.active) mask.lines[i] = LineMask{lm.prefix, lm.suffix, false};
  }
  return mask;
}

std::optional<std::string> masked_compare(
    const std::vector<std::string>& reference,
    const std::vector<std::string>& candidate, const NoiseMask& mask) {
  if (mask.structural_noise) {
    // The pair itself disagreed structurally; per the paper's assumption
    // we can only hold other instances to the same gross shape.
    if (candidate.size() != reference.size())
      return strformat("line count %zu != %zu under structural noise",
                       candidate.size(), reference.size());
    return std::nullopt;
  }
  if (candidate.size() != reference.size())
    return strformat("line count %zu != %zu", candidate.size(),
                     reference.size());
  const simd::Ops& ops = simd::active_ops();
  for (size_t i = 0; i < reference.size(); ++i) {
    diff::LineMask lm;
    if (mask.lines[i]) {
      lm.active = true;
      lm.prefix = static_cast<uint32_t>(mask.lines[i]->prefix);
      lm.suffix = static_cast<uint32_t>(mask.lines[i]->suffix);
    }
    diff::LineCheck chk =
        diff::masked_line_check(reference[i], candidate[i], lm, ops);
    switch (chk.fail) {
      case diff::LineFail::kNone:
        break;
      case diff::LineFail::kDiffers:
        return strformat("line %zu differs: '%.80s' vs '%.80s'", i,
                         reference[i].c_str(), candidate[i].c_str());
      case diff::LineFail::kShorterThanFrame:
        return strformat("line %zu shorter than noise frame", i);
      case diff::LineFail::kPrefix:
        return strformat("line %zu prefix differs outside noise region", i);
      case diff::LineFail::kSuffix:
        return strformat("line %zu suffix differs outside noise region", i);
    }
  }
  return std::nullopt;
}

std::vector<EphemeralToken> detect_ephemeral_tokens(
    const std::vector<std::vector<std::string>>& instance_lines) {
  std::vector<EphemeralToken> out;
  const size_t n = instance_lines.size();
  if (n < 2) return out;
  Arena arena(4096);
  CanonicalUnit* canon = arena.alloc_array<CanonicalUnit>(n);
  for (size_t i = 0; i < n; ++i) {
    canon[i] = CanonicalUnit{};
    for (const std::string& line : instance_lines[i])
      canon[i].lines.push_back(arena, ByteView(line));
  }
  ArenaVec<diff::TokenSpan> spans =
      diff::detect_tokens(canon, n, arena, simd::active_ops());
  out.reserve(spans.size());
  for (const diff::TokenSpan& t : spans) {
    EphemeralToken token;
    token.per_instance.reserve(t.n);
    for (size_t a = 0; a < t.n; ++a)
      token.per_instance.emplace_back(t.per_instance[a]);
    out.push_back(std::move(token));
  }
  return out;
}

#pragma GCC diagnostic pop

}  // namespace rddr::core
