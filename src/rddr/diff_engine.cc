#include "rddr/diff_engine.h"

#include <algorithm>

#include "common/strutil.h"

namespace rddr::core {

namespace diff {

namespace {

inline bool is_alnum(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

/// printf precision replicating the old "%.80s on c_str()" truncation:
/// stop at 80 bytes or the first NUL, whichever comes first.
inline int reason_prec(ByteView v) {
  size_t lim = std::min<size_t>(v.size(), 80);
  size_t nul = v.substr(0, lim).find('\0');
  if (nul != ByteView::npos) lim = nul;
  return static_cast<int>(lim);
}

inline const char* reason_data(ByteView v) {
  return v.empty() ? "" : v.data();
}

}  // namespace

LineMask build_line_mask(ByteView a, ByteView b, const simd::Ops& ops) {
  LineMask m;
  if (simd::equal(ops, a, b)) return m;  // inactive: exact match required
  m.active = true;
  size_t prefix = simd::common_prefix(ops, a, b);
  size_t suffix = simd::common_suffix(ops, a, b);
  // Prefix and suffix may overlap when one line nearly contains the
  // other; clamp so they describe disjoint regions of the shorter line.
  size_t min_len = std::min(a.size(), b.size());
  if (prefix + suffix > min_len) suffix = min_len - prefix;
  // Widen the noise region to alphanumeric-run boundaries: tokens are
  // alnum runs, and two random tokens can share their first/last
  // characters by chance — without widening, that chance agreement would
  // be enforced on every other instance (a false positive).
  while (prefix > 0 && is_alnum(static_cast<unsigned char>(a[prefix - 1])))
    --prefix;
  while (suffix > 0 &&
         is_alnum(static_cast<unsigned char>(a[a.size() - suffix])))
    --suffix;
  m.prefix = static_cast<uint32_t>(prefix);
  m.suffix = static_cast<uint32_t>(suffix);
  return m;
}

LineCheck masked_line_check(ByteView ref, ByteView cand, const LineMask& m,
                            const simd::Ops& ops) {
  if (!m.active) {
    if (!simd::equal(ops, ref, cand))
      return {LineFail::kDiffers, simd::common_prefix(ops, ref, cand)};
    return {};
  }
  size_t frame = static_cast<size_t>(m.prefix) + m.suffix;
  if (cand.size() < frame) return {LineFail::kShorterThanFrame, cand.size()};
  if (m.prefix > 0) {
    size_t at = ops.mismatch(cand.data(), ref.data(), m.prefix);
    if (at < m.prefix) return {LineFail::kPrefix, at};
  }
  if (m.suffix > 0) {
    size_t matched = ops.suffix_len(cand.data() + cand.size(),
                                    ref.data() + ref.size(), m.suffix);
    if (matched < m.suffix)
      return {LineFail::kSuffix, cand.size() - 1 - matched};
  }
  return {};
}

ArenaVec<TokenSpan> detect_tokens(const CanonicalUnit* canon, size_t n,
                                  Arena& arena, const simd::Ops& ops) {
  ArenaVec<TokenSpan> out;
  if (n < 2) return out;
  const size_t line_count = canon[0].lines.size();
  for (size_t i = 1; i < n; ++i)
    if (canon[i].lines.size() != line_count) return out;

  for (size_t li = 0; li < line_count; ++li) {
    // "Lines that differ across all instances": every instance's line is
    // distinct from every other's.
    bool all_differ = true;
    for (size_t a = 0; a < n && all_differ; ++a)
      for (size_t b = a + 1; b < n && all_differ; ++b)
        if (simd::equal(ops, canon[a].lines[li], canon[b].lines[li]))
          all_differ = false;
    if (!all_differ) continue;

    // Character range that differs: common prefix/suffix over ALL lines.
    ByteView l0 = canon[0].lines[li];
    size_t p = l0.size();
    size_t s = l0.size();
    for (size_t a = 1; a < n; ++a) {
      p = std::min(p, simd::common_prefix(ops, l0, canon[a].lines[li]));
      s = std::min(s, simd::common_suffix(ops, l0, canon[a].lines[li]));
    }
    // Widen to alnum-run boundaries (chance agreement between random
    // tokens must not truncate the captured token).
    while (p > 0 && is_alnum(static_cast<unsigned char>(l0[p - 1]))) --p;
    while (s > 0 && is_alnum(static_cast<unsigned char>(l0[l0.size() - s])))
      --s;
    ByteView* per = arena.alloc_array<ByteView>(n);
    bool ok = true;
    for (size_t a = 0; a < n && ok; ++a) {
      ByteView line = canon[a].lines[li];
      size_t sfx = s;
      if (p + sfx > line.size()) {
        if (p > line.size()) {
          ok = false;
          break;
        }
        sfx = line.size() - p;
      }
      ByteView candidate = line.substr(p, line.size() - p - sfx);
      // Paper's empirically-determined criterion: alphanumeric, >= 10.
      if (candidate.size() < 10 || !simd::all_alnum(ops, candidate)) {
        ok = false;
        break;
      }
      per[a] = candidate;
    }
    if (ok) out.push_back(arena, TokenSpan{per, n});
  }
  return out;
}

}  // namespace diff

// ---------------------------------------------------------------------------
// DiffEngine
// ---------------------------------------------------------------------------

namespace {

using diff::LineCheck;
using diff::LineFail;
using diff::LineMask;

/// Why one instance failed against the reference (or the mask).
enum class InstFail {
  kNone,
  kCountStructural,  // line count mismatch under structural pair noise
  kCount,            // line count mismatch
  kLine,             // a specific line failed (see LineCheck)
};

struct InstResult {
  InstFail fail = InstFail::kNone;
  size_t line = SIZE_MAX;
  LineCheck check;
};

std::string inst_fail_reason(const InstResult& r, const CanonicalUnit& ref,
                             const CanonicalUnit& cand) {
  switch (r.fail) {
    case InstFail::kCountStructural:
      return strformat("line count %zu != %zu under structural noise",
                       cand.lines.size(), ref.lines.size());
    case InstFail::kCount:
      return strformat("line count %zu != %zu", cand.lines.size(),
                       ref.lines.size());
    case InstFail::kLine:
      switch (r.check.fail) {
        case LineFail::kDiffers: {
          ByteView a = ref.lines[r.line];
          ByteView b = cand.lines[r.line];
          return strformat("line %zu differs: '%.*s' vs '%.*s'", r.line,
                           diff::reason_prec(a), diff::reason_data(a),
                           diff::reason_prec(b), diff::reason_data(b));
        }
        case LineFail::kShorterThanFrame:
          return strformat("line %zu shorter than noise frame", r.line);
        case LineFail::kPrefix:
          return strformat("line %zu prefix differs outside noise region",
                           r.line);
        case LineFail::kSuffix:
          return strformat("line %zu suffix differs outside noise region",
                           r.line);
        case LineFail::kNone:
          break;
      }
      break;
    case InstFail::kNone:
      break;
  }
  return "diverged";
}

}  // namespace

DiffEngine::DiffEngine(const DiffEngineOptions& opts)
    : ops_(&simd::ops(simd::resolve_level(opts.simd))),
      arena_(opts.arena_reserve_bytes) {}

BatchVerdict DiffEngine::compare(const ProtocolPlugin& plugin,
                                 const std::vector<Unit>& units,
                                 const CompareContext& ctx, VoteMode mode) {
  ++stats_.batches;
  const size_t n = units.size();
  // Raw short-circuit: canonicalisation is a pure function of (unit, ctx)
  // and every unit in the batch shares ctx, so byte-identical units have
  // identical canonical forms — the batch agrees before anything is
  // parsed. This is the dominant case on benign traffic and keeps the
  // per-batch cost at a memcmp per instance, like the pairwise path's
  // all-equal check, instead of N protocol parses.
  bool raw_equal = n >= 2;
  for (size_t i = 1; i < n && raw_equal; ++i)
    raw_equal =
        units[i].kind == units[0].kind && units[i].data == units[0].data;
  if (raw_equal) {
    ++stats_.raw_equal;
    arena_.reset();
    canon_ = nullptr;
    canon_key_ = &units;  // marks the batch known-identical for forward_
    canon_n_ = n;         // downstream (token detection provably empty)
    last_all_equal_ = true;
    last_unanimous_ = true;
    BatchVerdict v;
    v.unanimous = v.agreed = true;
    return v;
  }
  arena_.reset();
  canon_ = arena_.alloc_array<CanonicalUnit>(n);
  for (size_t i = 0; i < n; ++i) {
    canon_[i] = CanonicalUnit{};
    plugin.canonicalize(units[i], ctx, arena_, canon_[i]);
  }
  canon_key_ = &units;
  canon_n_ = n;
  BatchVerdict v =
      compare_canonical(canon_, n, ctx.filter_pair, mode, &plugin, &units);
  last_unanimous_ = v.unanimous;
  return v;
}

BatchVerdict DiffEngine::compare_canonical(const CanonicalUnit* canon,
                                           size_t n, bool filter_pair,
                                           VoteMode mode,
                                           const ProtocolPlugin* plugin,
                                           const std::vector<Unit>* units) {
  BatchVerdict v;
  last_all_equal_ = false;
  if (n == 0) {
    v.unanimous = v.agreed = true;
    return v;
  }
  const bool per_line = canon[0].per_line;
  const size_t count0 = canon[0].lines.size();

  // ---- class scan: units in different comparability classes diverge
  // before any content is read (the old kinds_match). ----
  size_t class_bad = SIZE_MAX;
  for (size_t i = 1; i < n; ++i) {
    if (canon[i].klass != canon[0].klass) {
      class_bad = i;
      break;
    }
  }

  if (class_bad == SIZE_MAX) {
    // ---- known-variance exemption (BackendKeyData, ignored
    // ParameterStatus): agrees by definition, content never read. ----
    bool all_exempt = true;
    for (size_t i = 0; i < n && all_exempt; ++i) all_exempt = canon[i].exempt;
    if (all_exempt) {
      v.unanimous = v.agreed = true;
      return v;
    }

    // ---- fast path: the interleaved N-way first-divergence scan. On
    // benign traffic every instance answers identically, so one
    // vectorised pass over the batch settles the verdict with no mask
    // work and no per-subset recomparison at all. ----
    bool counts_ok = true;
    for (size_t i = 1; i < n && counts_ok; ++i)
      counts_ok = canon[i].lines.size() == count0;
    if (counts_ok && n >= 2) {
      const char** cands = arena_.alloc_array<const char*>(n - 1);
      bool all_equal = true;
      for (size_t j = 0; j < count0 && all_equal; ++j) {
        ByteView ref = canon[0].lines[j];
        for (size_t i = 1; i < n; ++i) {
          if (canon[i].lines[j].size() != ref.size()) {
            all_equal = false;
            v.region = {j, std::min(ref.size(), canon[i].lines[j].size()), i};
            break;
          }
          cands[i - 1] = canon[i].lines[j].data();
        }
        if (!all_equal) break;
        if (ref.empty()) continue;
        simd::NwayHit hit =
            ops_->nway_mismatch(ref.data(), cands, n - 1, ref.size());
        if (hit.instance != SIZE_MAX) {
          all_equal = false;
          v.region = {j, hit.offset, hit.instance + 1};
        }
      }
      if (all_equal) {
        ++stats_.fast_path;
        last_all_equal_ = true;
        v.unanimous = v.agreed = true;
        return v;
      }
    }
  }

  // ---- slow path: some instance differs. Precompute per-instance facts
  // once; every verdict (full group + each leave-one-out subset) is then
  // derived from them without re-canonicalising or re-masking. ----

  // Exact-equality classes: cid[i] = lowest j with identical class+content.
  size_t* cid = arena_.alloc_array<size_t>(n);
  for (size_t i = 0; i < n; ++i) {
    cid[i] = i;
    for (size_t j = 0; j < i; ++j) {
      if (cid[j] != j) continue;  // only compare against representatives
      if (canon[j].klass != canon[i].klass) continue;
      if (canon[j].lines.size() != canon[i].lines.size()) continue;
      bool eq = true;
      for (size_t l = 0; l < canon[i].lines.size() && eq; ++l)
        eq = simd::equal(*ops_, canon[j].lines[l], canon[i].lines[l]);
      if (eq) {
        cid[i] = j;
        break;
      }
    }
  }

  // Filter-pair mask facts (§IV-B2), built once from instances 0/1 when a
  // masked context exists (full group of >= 3, or a subset keeping the
  // pair). masked[i] is instance i's verdict against instance 0 under
  // that one mask.
  const bool pair_comparable =
      filter_pair && n >= 3 && canon[1].klass == canon[0].klass;
  bool mask_structural = false;
  LineMask* mask_lines = nullptr;
  InstResult* masked = nullptr;
  bool* masked_ok = nullptr;
  if (pair_comparable) {
    ++stats_.mask_builds;
    mask_structural = canon[1].lines.size() != count0;
    if (!mask_structural) {
      mask_lines = arena_.alloc_array<LineMask>(count0);
      for (size_t j = 0; j < count0; ++j)
        mask_lines[j] =
            diff::build_line_mask(canon[0].lines[j], canon[1].lines[j], *ops_);
    }
    masked = arena_.alloc_array<InstResult>(n);
    masked_ok = arena_.alloc_array<bool>(n);
    for (size_t i = 0; i < n; ++i) {
      masked[i] = InstResult{};
      masked_ok[i] = true;
    }
    for (size_t i = 1; i < n; ++i) {
      if (i == 1) {
        // The mask is built FROM instance 1; under a non-structural mask
        // it passes by construction (the differential property test
        // checks this invariant against the reference implementation).
        if (mask_structural) {
          masked[1] = {InstFail::kCountStructural, SIZE_MAX, {}};
          masked_ok[1] = false;
        }
        continue;
      }
      const CanonicalUnit& c = canon[i];
      if (mask_structural) {
        if (c.lines.size() != count0) {
          masked[i] = {InstFail::kCountStructural, SIZE_MAX, {}};
          masked_ok[i] = false;
        }
        continue;
      }
      if (c.lines.size() != count0) {
        masked[i] = {InstFail::kCount, SIZE_MAX, {}};
        masked_ok[i] = false;
        continue;
      }
      for (size_t j = 0; j < count0; ++j) {
        LineCheck chk = diff::masked_line_check(canon[0].lines[j], c.lines[j],
                                                mask_lines[j], *ops_);
        if (chk.fail != LineFail::kNone) {
          masked[i] = {InstFail::kLine, j, chk};
          masked_ok[i] = false;
          break;
        }
      }
    }
  }

  // Exact walk of instance i against instance 0 (reason detail for the
  // unmasked line-oriented path — behaves like the old empty mask).
  auto exact_fail = [&](size_t i) -> InstResult {
    const CanonicalUnit& c = canon[i];
    if (c.lines.size() != count0) return {InstFail::kCount, SIZE_MAX, {}};
    LineMask inactive;
    for (size_t j = 0; j < count0; ++j) {
      LineCheck chk =
          diff::masked_line_check(canon[0].lines[j], c.lines[j], inactive, *ops_);
      if (chk.fail != LineFail::kNone) return {InstFail::kLine, j, chk};
    }
    return {};
  };

  // ---- full-group verdict (== the old plugin compare). ----
  const bool use_mask_full = filter_pair && n >= 3;
  bool full_divergent = false;
  std::string full_reason;
  auto fill_region = [&](size_t i, const InstResult& r) {
    if (v.region.instance != SIZE_MAX) return;  // fast scan already found it
    if (r.fail == InstFail::kLine)
      v.region = {r.line, r.check.offset, i};
    else
      v.region = {SIZE_MAX, 0, i};
  };
  if (class_bad != SIZE_MAX) {
    full_divergent = true;
    if (plugin && units) {
      full_reason = plugin->class_mismatch_reason(*units, class_bad);
    } else {
      full_reason = strformat(
          "unit class mismatch: instance 0 sent %.*s, instance %zu sent %.*s",
          diff::reason_prec(canon[0].klass), diff::reason_data(canon[0].klass),
          class_bad, diff::reason_prec(canon[class_bad].klass),
          diff::reason_data(canon[class_bad].klass));
    }
    v.region = {SIZE_MAX, 0, class_bad};
  } else if (use_mask_full) {
    const size_t start = per_line ? 1 : 2;
    for (size_t i = start; i < n; ++i) {
      if (masked_ok && !masked_ok[i]) {
        full_divergent = true;
        std::string sub = inst_fail_reason(masked[i], canon[0], canon[i]);
        if (per_line) {
          full_reason = strformat("instance %zu: %s", i, sub.c_str());
        } else {
          full_reason = strformat("%.*s: instance %zu: %s",
                                  diff::reason_prec(canon[0].what),
                                  diff::reason_data(canon[0].what), i,
                                  sub.c_str());
        }
        fill_region(i, masked[i]);
        break;
      }
    }
  } else {
    for (size_t i = 1; i < n; ++i) {
      if (cid[i] != 0) {
        full_divergent = true;
        if (per_line) {
          InstResult r = exact_fail(i);
          full_reason = strformat("instance %zu: %s", i,
                                  inst_fail_reason(r, canon[0], canon[i]).c_str());
          fill_region(i, r);
        } else {
          full_reason = strformat("%.*s differs across instances",
                                  diff::reason_prec(canon[0].what),
                                  diff::reason_data(canon[0].what));
          v.region.instance = v.region.instance == SIZE_MAX ? i : v.region.instance;
        }
        break;
      }
    }
  }

  if (!full_divergent) {
    v.unanimous = v.agreed = true;
    return v;
  }
  v.reason = std::move(full_reason);
  if (mode == VoteMode::kStrict) return v;

  // ---- quorum vote, derived from the precomputed facts (the old code
  // re-ran the whole compare once per leave-one-out subset). ----
  if (n < 3) return v;  // no majority possible
  ++stats_.quorum_votes;
  auto subset_agrees = [&](size_t o) -> bool {
    const size_t rep = o == 0 ? 1 : 0;
    for (size_t i = 0; i < n; ++i)
      if (i != o && canon[i].klass != canon[rep].klass) return false;
    bool exempt = true;
    for (size_t i = 0; i < n && exempt; ++i)
      if (i != o) exempt = canon[i].exempt;
    if (exempt) return true;
    // The de-noise mask is built from units 0 and 1; excluding either
    // breaks the pair, so those subsets fall back to exact comparison.
    const bool use_mask = filter_pair && o > 1 && (n - 1) >= 3;
    if (use_mask) {
      const size_t start = per_line ? 1 : 2;
      for (size_t i = start; i < n; ++i)
        if (i != o && masked_ok && !masked_ok[i]) return false;
      return true;
    }
    for (size_t i = 0; i < n; ++i)
      if (i != o && cid[i] != cid[rep]) return false;
    return true;
  };
  size_t candidate = SIZE_MAX;
  for (size_t o = 0; o < n; ++o) {
    if (subset_agrees(o)) {
      if (candidate != SIZE_MAX) return v;  // ambiguous: several outliers
      candidate = o;
    }
  }
  if (candidate == SIZE_MAX) return v;  // nobody's removal restores accord
  v.agreed = true;
  v.outlier = candidate;
  return v;
}

Bytes DiffEngine::forward_downstream(const ProtocolPlugin& plugin,
                                     const std::vector<Unit>& units,
                                     const CompareContext& ctx) {
  if (plugin.harvest_tokens() && ctx.session && units.size() >= 2) {
    const bool key_match = canon_key_ == static_cast<const void*>(&units) &&
                           canon_n_ == units.size();
    const bool cached = key_match && canon_ != nullptr;
    // When the raw short-circuit or the interleaved scan proved the batch
    // byte-identical, no line can differ across all instances — detection
    // would find nothing. (The raw path leaves no canonical forms at all.)
    const bool skip = key_match && (last_all_equal_ || !last_unanimous_);
    if (!skip) {
      const CanonicalUnit* canon = canon_;
      size_t n = units.size();
      if (!cached) {
        arena_.reset();
        canon_ = nullptr;
        canon_key_ = nullptr;
        CanonicalUnit* fresh = arena_.alloc_array<CanonicalUnit>(n);
        for (size_t i = 0; i < n; ++i) {
          fresh[i] = CanonicalUnit{};
          plugin.canonicalize(units[i], ctx, arena_, fresh[i]);
        }
        canon = fresh;
      }
      ArenaVec<diff::TokenSpan> tokens =
          diff::detect_tokens(canon, n, arena_, *ops_);
      for (const diff::TokenSpan& t : tokens) {
        std::vector<std::string> per;
        per.reserve(t.n);
        for (size_t a = 0; a < t.n; ++a) per.emplace_back(t.per_instance[a]);
        std::string key = per[0];
        ctx.session->tokens[std::move(key)] = std::move(per);
        ++stats_.tokens_harvested;
      }
    }
  }
  return units[0].data;
}

}  // namespace rddr::core
