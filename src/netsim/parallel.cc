#include "netsim/parallel.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.h"

namespace rddr::sim {

namespace {

inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

// Spin briefly, then yield: windows are short (microseconds of real time),
// so a sleeping barrier would dominate; on undersized machines (including
// single-core CI) the yield keeps the coordinator schedulable.
template <typename Pred>
void spin_until(Pred&& done) {
  int spins = 0;
  while (!done()) {
    if (++spins < 64) {
      spin_pause();
    } else {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

ParallelExecutor::ParallelExecutor(Simulator& sim, const ParallelOptions& opts)
    : sim_(sim), opts_(opts) {
  size_t islands = sim_.island_count();
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  nthreads_ = opts_.threads ? opts_.threads : hw;
  // RDDR_PARALLEL_THREADS overrides everything: the sanitizer suite uses
  // it to force real worker threads on single-core CI boxes, where the
  // hardware default would collapse to 1 and TSan would see no
  // concurrency at all. Results never depend on the value.
  if (const char* env = std::getenv("RDDR_PARALLEL_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) nthreads_ = static_cast<size_t>(v);
  }
  nthreads_ = std::min(nthreads_, islands);
  nthreads_ = std::max<size_t>(nthreads_, 1);
  if (opts_.min_lookahead < 1) opts_.min_lookahead = 1;
  rngs_.reserve(islands);
  Rng base(opts_.rng_seed);
  for (size_t i = 0; i < islands; ++i) rngs_.push_back(base.fork(i));
  workers_.reserve(nthreads_ - 1);
  for (size_t w = 1; w < nthreads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ParallelExecutor::~ParallelExecutor() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& t : workers_) t.join();
}

void ParallelExecutor::worker_loop(size_t w) {
  uint64_t seen = 0;
  for (;;) {
    spin_until([&] {
      return epoch_.load(std::memory_order_acquire) != seen;
    });
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    drain_share(w);
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

void ParallelExecutor::drain_share(size_t w) {
  // Static round-robin island ownership: deterministic and stateless.
  // Within a window island order does not matter — islands are
  // independent until the barrier.
  size_t islands = sim_.islands_.size();
  for (size_t i = w; i < islands; i += nthreads_)
    sim_.drain_island(*sim_.islands_[i], window_end_, SIZE_MAX);
}

Time ParallelExecutor::sample_lookahead() {
  Time la = opts_.lookahead_provider ? opts_.lookahead_provider() : 0;
  if (la < opts_.min_lookahead) la = opts_.min_lookahead;
  stats_.current_lookahead = la;
  return la;
}

bool ParallelExecutor::run_window() {
  Time next = Simulator::kNoEvent;
  for (auto& isl : sim_.islands_)
    next = std::min(next, sim_.next_live_time(*isl));
  Time g = sim_.global_.empty() ? Simulator::kNoEvent
                                : sim_.global_.front().time;
  if (next == Simulator::kNoEvent && g == Simulator::kNoEvent) return false;
  if (g <= next) {
    if (g >= limit_) return false;
    run_global_batch();
    return true;
  }
  if (next >= limit_) return false;
  Time la = sample_lookahead();
  Time end = next > Simulator::kNoEvent - la ? Simulator::kNoEvent : next + la;
  end = std::min(end, std::min(g, limit_));  // never span a global event
  execute_window(end);
  return true;
}

void ParallelExecutor::execute_window(Time end) {
  window_end_ = end;
  for (auto& isl : sim_.islands_) isl->window_events = 0;
  sim_.in_parallel_phase_ = true;
  uint32_t helpers = static_cast<uint32_t>(nthreads_ - 1);
  pending_.store(helpers, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  drain_share(0);
  spin_until([&] { return pending_.load(std::memory_order_acquire) == 0; });
  sim_.in_parallel_phase_ = false;

  merge_outboxes(end);

  uint64_t max_ev = 0;
  uint64_t sum_ev = 0;
  for (auto& isl : sim_.islands_) {
    sum_ev += isl->window_events;
    max_ev = std::max(max_ev, isl->window_events);
    if (isl->window_events == 0) ++stats_.barrier_stalls;
  }
  ++stats_.windows;
  stats_.total_events += sum_ev;
  stats_.critical_path_events += max_ev;
  if (window_counter_) publish_metrics();
}

void ParallelExecutor::merge_outboxes(Time end) {
  // Deterministic total order over everything buffered this window:
  // (time, source island, append order). Source order within one island
  // is deterministic (single-threaded drain); island ids order the rest.
  struct Ref {
    Time time;
    IslandId src;
    uint32_t idx;
    Simulator::OutMsg* msg;
  };
  static thread_local std::vector<Ref> refs;
  refs.clear();
  for (auto& isl : sim_.islands_) {
    for (size_t i = 0; i < isl->outbox.size(); ++i)
      refs.push_back(Ref{isl->outbox[i].time, isl->id,
                         static_cast<uint32_t>(i), &isl->outbox[i]});
  }
  if (refs.empty()) return;
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.idx < b.idx;
  });
  for (Ref& r : refs) {
    Time t = r.time;
    // Conservative causality: a cross-island send from window [W, end)
    // must land at or after `end`. The network's latency floor makes
    // this hold by construction; clamp (and count) in case a future
    // caller breaks the contract rather than corrupting heap order.
    assert(t >= end && "cross-island event inside the conservative window");
    if (t < end) {
      t = end;
      ++stats_.causality_clamps;
    }
    sim_.push_event(*sim_.islands_[r.msg->dest], t, std::move(r.msg->fn));
    ++stats_.merged_messages;
  }
  for (auto& isl : sim_.islands_) isl->outbox.clear();
}

void ParallelExecutor::run_global_batch() {
  Time tg = sim_.global_.front().time;
  // Global events observe one consistent instant: every island clock is
  // advanced to tg before the first handler runs (workers are parked, so
  // this is plain sequential code).
  for (auto& isl : sim_.islands_)
    if (isl->now < tg) isl->now = tg;
  IslandScope scope(0);
  auto later = [](const Simulator::GlobalEvent& a,
                  const Simulator::GlobalEvent& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  };
  while (!sim_.global_.empty() && sim_.global_.front().time <= tg) {
    std::pop_heap(sim_.global_.begin(), sim_.global_.end(), later);
    EventFn fn = std::move(sim_.global_.back().fn);
    sim_.global_.pop_back();
    fn();  // may push further globals; the heap stays valid
    ++stats_.global_events;
  }
}

size_t ParallelExecutor::run_until_idle(size_t max_events) {
  size_t n = 0;
  while (n < max_events) {
    uint64_t before = sim_.events_executed() + stats_.global_events;
    if (!run_window()) break;
    n += static_cast<size_t>(sim_.events_executed() + stats_.global_events -
                             before);
  }
  return n;
}

void ParallelExecutor::run_until(Time t) {
  Time saved = limit_;
  // run_until is inclusive of events at exactly t; windows use exclusive
  // upper bounds, so the limit is t+1 (saturating).
  limit_ = t == INT64_MAX ? t : t + 1;
  while (run_window()) {
  }
  limit_ = saved;
  for (auto& isl : sim_.islands_)
    if (isl->now < t) isl->now = t;
}

void ParallelExecutor::bind_metrics(obs::MetricsRegistry& reg) {
  size_t islands = sim_.island_count();
  island_event_counters_.resize(islands);
  published_events_.assign(islands, 0);
  for (size_t i = 0; i < islands; ++i)
    island_event_counters_[i] =
        reg.counter("islands.events." + std::to_string(i));
  stall_counter_ = reg.counter("islands.stalls");
  window_counter_ = reg.counter("islands.windows");
  merged_counter_ = reg.counter("islands.merged");
  clamp_counter_ = reg.counter("islands.clamps");
  lookahead_gauge_ = reg.gauge("islands.lookahead_ns");
  publish_metrics();
}

void ParallelExecutor::publish_metrics() {
  for (size_t i = 0; i < island_event_counters_.size(); ++i) {
    uint64_t total = sim_.island_events_executed(static_cast<IslandId>(i));
    island_event_counters_[i]->inc(total - published_events_[i]);
    published_events_[i] = total;
  }
  stall_counter_->inc(stats_.barrier_stalls - published_stalls_);
  published_stalls_ = stats_.barrier_stalls;
  window_counter_->inc(stats_.windows - published_windows_);
  published_windows_ = stats_.windows;
  merged_counter_->inc(stats_.merged_messages - published_merged_);
  published_merged_ = stats_.merged_messages;
  clamp_counter_->inc(stats_.causality_clamps - published_clamps_);
  published_clamps_ = stats_.causality_clamps;
  lookahead_gauge_->set(static_cast<double>(stats_.current_lookahead));
}

}  // namespace rddr::sim
