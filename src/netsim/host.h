// Virtual machine model: processor-sharing CPU plus a memory ledger.
//
// Substitutes for the paper's AWS hosts (m5a.8xlarge, 32 vCPU / 128 GB).
// Services charge each request's CPU cost to the host via `run_task`; when
// more tasks are active than cores, every task slows down proportionally
// (egalitarian processor sharing). This is the mechanism behind the paper's
// Figures 4-6 — three replicas exhaust the box ~3x sooner than one — so the
// reproduced curves keep their shape without real hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"

namespace rddr::sim {

/// A resource reading (Fig 6 time series). `cpu_pct` is the MEAN
/// utilisation over the interval ending at `time` (computed from the
/// busy-core integral, so lockstep bursts don't alias), except for the
/// first sample of a series, which is instantaneous.
struct ResourceSample {
  Time time;
  double cpu_pct;     // mean busy cores / total cores * 100 over interval
  double mem_bytes;   // resident memory at sample time
};

/// Host with `cores` CPUs under egalitarian processor sharing and a simple
/// resident-memory ledger. All bookkeeping is driven by the simulator clock.
class Host {
 public:
  Host(Simulator& sim, std::string name, int cores,
       int64_t memory_capacity_bytes);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;
  ~Host();

  const std::string& name() const { return name_; }
  int cores() const { return cores_; }

  /// Pins the host to an island (setup-time; 0 by default). All of the
  /// host's self-scheduled events (completions, samplers) run there, so
  /// the services charging CPU to this host must be pinned to the same
  /// island — the deployment builder's islands() knob keeps a shard's
  /// hosts, proxies and backends together.
  void pin_island(IslandId island) { island_ = island; }
  IslandId island() const { return island_; }

  /// Runs a CPU task needing `cpu_seconds` of one core; `done` fires when
  /// the task completes under processor sharing (nullptr: fire-and-forget).
  /// Zero-cost tasks complete on the next event. On a failed host the task
  /// is silently dropped — its completion never fires (crash semantics).
  void run_task(double cpu_seconds, EventFn done);

  /// Machine crash: every in-flight CPU task is lost (completions never
  /// fire) and new tasks are dropped until restore(). Memory levels are
  /// preserved — the ledger tracks *charged* allocations, whose owners
  /// release them when torn down.
  void fail();
  void restore();
  bool failed() const { return failed_; }

  /// Number of currently active CPU tasks.
  size_t active_tasks() const { return heap_.size(); }

  /// Resident memory accounting (per-container charges flow through here).
  void charge_memory(int64_t bytes);
  void release_memory(int64_t bytes);
  int64_t memory_bytes() const { return memory_bytes_; }
  int64_t memory_capacity() const { return memory_capacity_; }
  double max_memory_bytes() const { return mem_track_.max_value(); }

  /// Core-seconds of CPU consumed since construction (or last reset).
  double busy_core_seconds() const;

  /// Mean utilisation (busy cores / cores) over the tracked interval.
  double mean_utilization() const;

  /// Resets the CPU/memory integrals and the sample series (memory level is
  /// preserved). Used to scope measurements to a benchmark phase.
  void reset_metrics();

  /// Starts periodic sampling of CPU% and memory into `samples()`.
  void start_sampling(Time interval);
  void stop_sampling();
  const std::vector<ResourceSample>& samples() const { return samples_; }

  /// Publishes this host's resource readings as gauges in `reg` under
  /// "<prefix>.cpu_pct" / "<prefix>.mem_bytes" (prefix defaults to the host
  /// name). Gauges update on every sampling tick, so start_sampling() must
  /// be active for the series to move; nullptr detaches.
  void bind_metrics(obs::MetricsRegistry* reg, const std::string& prefix = "");

  /// Instantaneous CPU utilisation in percent.
  double cpu_pct_now() const;

 private:
  // Egalitarian processor sharing in virtual work time: every active task
  // progresses at the SAME instantaneous rate, so instead of decrementing
  // each task's remaining work on every settle (O(active) per event, which
  // made dense phases quadratic), a single virtual-work clock `vwork_`
  // accrues that shared progress and each task stores the clock value at
  // which it completes. Relative completion order never changes once a
  // task is admitted, so a min-heap on the finish value yields the next
  // completion in O(log active).
  struct Task {
    double finish_v;  // vwork_ value at which the task completes
    uint64_t seq;     // admission order; callback order for joint finishes
    EventFn done;
  };

  void settle();       // accrue progress at the current rate up to now
  void reschedule();   // plan the next completion event
  void on_completion_event();
  void schedule_sample();
  double per_task_rate() const;

  Simulator& sim_;
  std::string name_;
  IslandId island_ = 0;
  int cores_;
  int64_t memory_capacity_;
  int64_t memory_bytes_ = 0;
  bool failed_ = false;

  std::vector<Task> heap_;         // min-heap on (finish_v, seq)
  std::vector<Task> finished_;     // per-event scratch (capacity reused)
  double vwork_ = 0;               // virtual work completed per task so far
  uint64_t task_seq_ = 0;
  Time last_settle_ = 0;
  uint64_t completion_event_ = 0;  // 0 = none pending

  TimeWeightedValue busy_track_;   // busy cores over time
  TimeWeightedValue mem_track_;    // memory bytes over time
  Time metrics_epoch_ = 0;

  Time sample_interval_ = 0;
  uint64_t sample_event_ = 0;
  double last_sample_busy_integral_ = 0;
  std::vector<ResourceSample> samples_;

  obs::Gauge* cpu_gauge_ = nullptr;
  obs::Gauge* mem_gauge_ = nullptr;
};

}  // namespace rddr::sim
