#include "netsim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"
#include "netsim/parallel.h"

namespace rddr::sim {

Simulator::Simulator() {
  islands_.push_back(std::make_unique<Island>());
  islands_[0]->id = 0;
  set_log_clock([this] { return cur().now; });
}

Simulator::~Simulator() = default;

uint32_t Simulator::alloc_slot(Island& isl) {
  if (isl.free_head != kNilSlot) {
    uint32_t slot = isl.free_head;
    isl.free_head = isl.slots[slot].next_free;
    return slot;
  }
  isl.slots.emplace_back();
  return static_cast<uint32_t>(isl.slots.size() - 1);
}

void Simulator::release_slot(Island& isl, uint32_t slot) {
  Slot& s = isl.slots[slot];
  s.fn = nullptr;
  s.armed = false;
  ++s.gen;  // invalidates every outstanding id / heap entry for this slot
  s.next_free = isl.free_head;
  isl.free_head = slot;
}

// 4-ary heap with hole percolation: half the depth of a binary heap (the
// sift path is what the event loop spends its time on) and one entry move
// per level instead of a three-move swap.

void Simulator::heap_push(Island& isl, const HeapEntry& e) {
  auto& heap = isl.heap;
  size_t i = heap.size();
  heap.push_back(e);
  while (i > 0) {
    size_t parent = (i - 1) / 4;
    if (!before(e, heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}

Simulator::HeapEntry Simulator::heap_pop(Island& isl) {
  auto& heap = isl.heap;
  HeapEntry top = heap.front();
  HeapEntry last = heap.back();
  heap.pop_back();
  size_t n = heap.size();
  if (n == 0) return top;
  size_t i = 0;
  while (true) {
    size_t c = 4 * i + 1;
    if (c >= n) break;
    size_t best = c;
    size_t end = c + 4 < n ? c + 4 : n;
    for (size_t k = c + 1; k < end; ++k)
      if (before(heap[k], heap[best])) best = k;
    if (!before(heap[best], last)) break;
    heap[i] = heap[best];
    i = best;
  }
  heap[i] = last;
  return top;
}

uint64_t Simulator::push_event(Island& isl, Time t, EventFn fn) {
  if (t < isl.now) t = isl.now;
  uint32_t slot = alloc_slot(isl);
  Slot& s = isl.slots[slot];
  s.fn = std::move(fn);
  s.armed = true;
  heap_push(isl, HeapEntry{t, isl.next_seq++, slot, s.gen});
  ++isl.live;
  // slot+1 keeps ids nonzero so callers can use 0 as "no event".
  uint64_t id = (static_cast<uint64_t>(isl.id) << (kIdGenBits + kIdSlotBits)) |
                (static_cast<uint64_t>(s.gen & kIdGenMask) << kIdSlotBits) |
                ((slot + 1ull) & kIdSlotMask);
  isl.last_id = id;
  return id;
}

uint64_t Simulator::schedule_at(Time t, EventFn fn) {
  return push_event(cur(), t, std::move(fn));
}

uint64_t Simulator::schedule(Time delay, EventFn fn) {
  assert(delay >= 0);
  Island& isl = cur();
  return push_event(isl, isl.now + delay, std::move(fn));
}

uint64_t Simulator::schedule_on(IslandId island, Time t, EventFn fn) {
  Island& src = cur();
  if (island >= islands_.size()) island = 0;
  Island& dst = *islands_[island];
  if (&dst == &src) return push_event(src, t, std::move(fn));
  if (in_parallel_phase_) {
    // Cross-island during a window: the destination heap belongs to another
    // worker right now. Buffer in our outbox; the barrier merges all
    // outboxes in (time, source island, source order) order.
    src.outbox.push_back(OutMsg{t, island, std::move(fn)});
    return 0;
  }
  // Sequential context (setup, barrier, global event): safe to push
  // directly. Clamp to the destination clock like any schedule_at.
  return push_event(dst, t, std::move(fn));
}

void Simulator::schedule_global_at(Time t, EventFn fn) {
  assert(!in_parallel_phase_ && "global events must not be scheduled from inside a parallel window");
  if (!exec_) {
    // No executor: globals are ordinary island-0 events (legacy loop and
    // the islands=1 oracle both take this path).
    IslandScope scope(0);
    schedule_at(t, std::move(fn));
    return;
  }
  if (t < islands_[0]->now) t = islands_[0]->now;
  global_.push_back(GlobalEvent{t, global_seq_++, std::move(fn)});
  std::push_heap(global_.begin(), global_.end(),
                 [](const GlobalEvent& a, const GlobalEvent& b) {
                   return a.time != b.time ? a.time > b.time : a.seq > b.seq;
                 });
}

void Simulator::cancel(uint64_t id) {
  if (id == 0) return;
  IslandId isl_id = static_cast<IslandId>(id >> (kIdGenBits + kIdSlotBits));
  if (isl_id >= islands_.size()) return;
  Island& isl = *islands_[isl_id];
  uint32_t slot = static_cast<uint32_t>(id & kIdSlotMask) - 1;
  uint32_t gen = static_cast<uint32_t>((id >> kIdSlotBits) & kIdGenMask);
  if (slot >= isl.slots.size()) return;
  Slot& s = isl.slots[slot];
  // Generations are compared modulo 2^28: ~268M reuses of one slot before
  // a stale id could alias, far beyond any run in this repo.
  if (!s.armed || (s.gen & kIdGenMask) != gen) return;
  release_slot(isl, slot);
  --isl.live;
  // The heap entry stays behind; step() skips it when the generation no
  // longer matches. Cancel itself is O(1) and retains nothing.
}

bool Simulator::step_island(Island& isl) {
  while (!isl.heap.empty()) {
    HeapEntry ev = heap_pop(isl);
    Slot& s = isl.slots[ev.slot];
    if (!s.armed || s.gen != ev.gen) continue;  // cancelled: skip stale entry
    EventFn fn = std::move(s.fn);
    release_slot(isl, ev.slot);
    --isl.live;
    assert(ev.time >= isl.now);
    isl.now = ev.time;
    ++isl.executed;
    ++isl.window_events;
    fn();
    return true;
  }
  return false;
}

Time Simulator::next_live_time(Island& isl) {
  while (!isl.heap.empty()) {
    const HeapEntry& ev = isl.heap.front();
    const Slot& s = isl.slots[ev.slot];
    if (!s.armed || s.gen != ev.gen) {
      heap_pop(isl);  // drop stale entry without executing
      continue;
    }
    return ev.time;
  }
  return kNoEvent;
}

size_t Simulator::drain_island(Island& isl, Time end, size_t max_events) {
  IslandScope scope(isl.id);
  size_t n = 0;
  while (n < max_events) {
    Time t = next_live_time(isl);
    if (t >= end) break;
    step_island(isl);
    ++n;
  }
  return n;
}

bool Simulator::step() {
  if (exec_) return exec_->run_window();
  return step_island(cur());
}

size_t Simulator::run_until_idle(size_t max_events) {
  if (exec_) return exec_->run_until_idle(max_events);
  Island& isl = cur();
  size_t n = 0;
  while (n < max_events && step_island(isl)) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  if (exec_) {
    exec_->run_until(t);
    return;
  }
  Island& isl = cur();
  while (true) {
    Time next = next_live_time(isl);
    if (next > t) break;
    step_island(isl);
  }
  if (isl.now < t) isl.now = t;
}

uint64_t Simulator::events_executed() const {
  uint64_t n = 0;
  for (const auto& isl : islands_) n += isl->executed;
  return n;
}

size_t Simulator::pending_events() const {
  size_t n = global_.size();
  for (const auto& isl : islands_) n += isl->live;
  return n;
}

void Simulator::configure_islands(size_t count, const ParallelOptions& opts) {
  // Grow-only and idempotent: a scenario harness and a deployment builder
  // may both declare the island count; the first call that needs an
  // executor fixes its options.
  assert(count >= 1 && count <= kMaxIslands);
  if (count > kMaxIslands) count = kMaxIslands;
  if (count == 0) count = 1;
  islands_configured_ = true;
  Time start = islands_[0]->now;
  while (islands_.size() < count) {
    auto isl = std::make_unique<Island>();
    isl->id = static_cast<IslandId>(islands_.size());
    isl->now = start;
    islands_.push_back(std::move(isl));
  }
  if (islands_.size() >= 2 && !exec_)
    exec_ = std::make_unique<ParallelExecutor>(*this, opts);
}

void Simulator::configure_islands(size_t count) {
  configure_islands(count, ParallelOptions{});
}

}  // namespace rddr::sim
