#include "netsim/simulator.h"

#include <cassert>

#include "common/log.h"

namespace rddr::sim {

Simulator::Simulator() {
  set_log_clock([this] { return now_; });
}

uint64_t Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

uint64_t Simulator::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(uint64_t id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) continue;  // defensive; should not happen
    auto fn = std::move(it->second);
    handlers_.erase(it);
    assert(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

size_t Simulator::run_until_idle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty()) {
    // Skip cancelled heads without executing.
    Event ev = queue_.top();
    if (cancelled_.count(ev.id) > 0) {
      queue_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace rddr::sim
