#include "netsim/simulator.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace rddr::sim {

Simulator::Simulator() {
  set_log_clock([this] { return now_; });
}

Simulator::~Simulator() = default;

uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNilSlot) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.armed = false;
  ++s.gen;  // invalidates every outstanding id / heap entry for this slot
  s.next_free = free_head_;
  free_head_ = slot;
}

// 4-ary heap with hole percolation: half the depth of a binary heap (the
// sift path is what the event loop spends its time on) and one entry move
// per level instead of a three-move swap.

void Simulator::heap_push(const HeapEntry& e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Simulator::HeapEntry Simulator::heap_pop() {
  HeapEntry top = heap_.front();
  HeapEntry last = heap_.back();
  heap_.pop_back();
  size_t n = heap_.size();
  if (n == 0) return top;
  size_t i = 0;
  while (true) {
    size_t c = 4 * i + 1;
    if (c >= n) break;
    size_t best = c;
    size_t end = c + 4 < n ? c + 4 : n;
    for (size_t k = c + 1; k < end; ++k)
      if (before(heap_[k], heap_[best])) best = k;
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
  return top;
}

uint64_t Simulator::schedule_at(Time t, EventFn fn) {
  if (t < now_) t = now_;
  uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  heap_push(HeapEntry{t, next_seq_++, slot, s.gen});
  ++live_;
  // slot+1 keeps ids nonzero so callers can use 0 as "no event".
  last_id_ = (static_cast<uint64_t>(s.gen) << 32) | (slot + 1ull);
  return last_id_;
}

uint64_t Simulator::schedule(Time delay, EventFn fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(uint64_t id) {
  if (id == 0) return;
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return;  // already fired, cancelled, or stale
  release_slot(slot);
  --live_;
  // The heap entry stays behind; step() skips it when the generation no
  // longer matches. Cancel itself is O(1) and retains nothing.
}

bool Simulator::step() {
  while (!heap_.empty()) {
    HeapEntry ev = heap_pop();
    Slot& s = slots_[ev.slot];
    if (!s.armed || s.gen != ev.gen) continue;  // cancelled: skip stale entry
    EventFn fn = std::move(s.fn);
    release_slot(ev.slot);
    --live_;
    assert(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

size_t Simulator::run_until_idle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(Time t) {
  while (!heap_.empty()) {
    const HeapEntry& ev = heap_.front();
    const Slot& s = slots_[ev.slot];
    if (!s.armed || s.gen != ev.gen) {
      heap_pop();  // drop stale entry without executing
      continue;
    }
    if (ev.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace rddr::sim
