// FaultPlan: deterministic fault scheduling on the virtual clock.
//
// The chaos layer the §IV-D limitations call for: every fault is an event
// scheduled on the shared Simulator, so a scenario (crash pg-2 at t=3s,
// restart it at t=8s, partition the proxy from svc-1 between 10s and 12s)
// replays byte-identically from a seed. FaultPlan only schedules; the
// mechanics live on Network (node/link state) and Host (CPU task loss).
#pragma once

#include <set>
#include <string>

#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/simulator.h"

namespace rddr::sim {

class FaultPlan {
 public:
  explicit FaultPlan(Network& net) : net_(net) {}

  /// Crashes `node` at absolute time `t`: all live connections touching it
  /// are severed, new connects refused. With `host`, the machine's CPU
  /// tasks are dropped too (their completions never fire).
  void crash_at(Time t, const std::string& node, Host* host = nullptr);

  /// Restarts a crashed node at `t` (listeners answer again; with `host`,
  /// the machine accepts CPU work again).
  void restart_at(Time t, const std::string& node, Host* host = nullptr);

  /// Crash at `t`, restart `downtime` later — the common pair.
  void crash_for(Time t, Time downtime, const std::string& node,
                 Host* host = nullptr);

  /// Refuses connections to one address during [t, t + duration).
  void refuse_address_for(Time t, Time duration, const std::string& address);

  /// Adds `extra` per-direction latency to traffic touching `node` during
  /// [t, t + duration) — a latency spike.
  void latency_spike(Time t, Time duration, const std::string& node,
                     Time extra);

  /// One-sided stall: bytes sent by `node` during [t, t + duration) are
  /// held until the stall ends (the node is alive but frozen).
  void stall_egress(Time t, Time duration, const std::string& node);

  /// Partitions `group` from the rest of the network during
  /// [t, t + duration).
  void partition_for(Time t, Time duration, std::set<std::string> group);

 private:
  Network& net_;
};

}  // namespace rddr::sim
