// Deterministic simulated block device.
//
// The durability substrate under sqldb's storage engine (DESIGN.md
// "Durable storage & recovery"): a map of numbered blocks with a *staged*
// write cache in front of a *durable* image. `write` stages; `sync` is
// the durability barrier that promotes every staged block to the durable
// image. A `crash` discards or mangles the staged set under a seeded
// fault model — torn writes keep only a prefix of the new content spliced
// over the old, lost writes vanish entirely — which is how torn-page and
// partial-WAL-flush scenarios arise in an otherwise synchronous
// single-threaded simulation.
//
// The device is passive: it never touches the Simulator. Each operation
// returns the virtual time it should cost (charged per `page_size` unit of
// payload) and the caller schedules that delay on its own clock, keeping
// storage latency inside the same deterministic pipeline as network and
// CPU costs (the CloudNativeSim simulated-resource approach; PAPERS.md).
//
// Determinism: fault rolls come from an owned forked Rng, staged blocks
// are iterated in block order at crash time, and all latencies are fixed
// functions of payload size — same seed, same op sequence, byte-identical
// durable images.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "netsim/simulator.h"

namespace rddr::sim {

/// Seeded fault model applied by BlockDevice. All probabilities are per
/// staged block at crash time except `read_error_prob` (per read).
struct DiskFaults {
  double torn_write_prob = 0.0;  ///< staged block persists as a prefix
  double lost_write_prob = 0.0;  ///< staged block is dropped entirely
  double read_error_prob = 0.0;  ///< transient read failure (retryable)
};

class BlockDevice {
 public:
  struct Options {
    /// Latency accounting granularity: payloads are charged per
    /// ceil(size / page_size) pages. Blocks may hold any payload size.
    uint64_t page_size = 4096;
    Time read_latency = 20 * kMicrosecond;    ///< per page read
    Time write_latency = 40 * kMicrosecond;   ///< per page staged
    Time sync_latency = 250 * kMicrosecond;   ///< per sync barrier
    DiskFaults faults;
    uint64_t rng_seed = 1;
  };

  struct ReadResult {
    bool ok = false;      ///< false: transient read error or missing block
    bool exists = false;  ///< block has content (staged or durable)
    Bytes data;
    Time latency = 0;
  };

  struct Counters {
    uint64_t reads = 0, writes = 0, syncs = 0;
    uint64_t bytes_read = 0, bytes_written = 0;
    uint64_t read_errors = 0;
    uint64_t torn_writes = 0, lost_writes = 0;  ///< applied at crash
    uint64_t crashes = 0;
  };

  explicit BlockDevice(Options opts);

  /// Stages `data` as the new content of `block` (whole-block replace).
  /// Staged content is visible to `read` but not durable until `sync`.
  /// Returns the modeled latency of the write.
  Time write(uint64_t block, Bytes data);

  /// Reads `block` (staged content wins over durable). A seeded transient
  /// read error returns ok=false with exists untouched — callers treat it
  /// like a checksum failure and may retry or fall back.
  ReadResult read(uint64_t block) const;

  /// Durability barrier: every staged block becomes durable, in block
  /// order. Returns the modeled latency (sync_latency + per-page write
  /// cost of the promoted payloads).
  Time sync();

  /// Removes `block` from both staged and durable images (used by WAL
  /// truncation). Free: modeled as metadata-only.
  void trim(uint64_t block);

  /// Power loss: applies the fault model to each staged block in block
  /// order — survive intact, survive torn (prefix spliced over the old
  /// durable content), or vanish — then clears the staged set. The
  /// durable image is otherwise untouched.
  void crash();

  /// Chaos hook: the next crash tears the highest staged block (the
  /// in-flight tail), regardless of probabilities. No-op if nothing is
  /// staged at crash time.
  void force_torn_on_next_crash() { force_torn_ = true; }

  bool has_block(uint64_t block) const {
    return staged_.count(block) || durable_.count(block);
  }
  uint64_t staged_blocks() const { return staged_.size(); }
  uint64_t durable_blocks() const { return durable_.size(); }
  /// Total durable payload bytes (simulated disk usage).
  uint64_t durable_bytes() const { return durable_bytes_; }

  const Counters& counters() const { return counters_; }
  const Options& options() const { return opts_; }

 private:
  Time pages_cost(size_t size, Time per_page) const {
    uint64_t pages = (size + opts_.page_size - 1) / opts_.page_size;
    if (pages == 0) pages = 1;
    return static_cast<Time>(pages) * per_page;
  }

  Options opts_;
  mutable Rng rng_;
  std::map<uint64_t, Bytes> staged_;
  std::map<uint64_t, Bytes> durable_;
  uint64_t durable_bytes_ = 0;
  bool force_torn_ = false;
  mutable Counters counters_;
};

}  // namespace rddr::sim
