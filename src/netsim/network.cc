#include "netsim/network.h"

#include <algorithm>

#include "common/log.h"

namespace rddr::sim {

Connection::Connection(Simulator& sim, uint64_t id, Time latency,
                       ConnectMeta meta, std::string dialed_address,
                       bool is_client_half)
    : sim_(sim),
      id_(id),
      latency_(latency),
      meta_(std::move(meta)),
      dialed_address_(std::move(dialed_address)),
      is_client_half_(is_client_half) {
  local_node_ = is_client_half_ ? Network::node_of(meta_.source)
                                : Network::node_of(dialed_address_);
}

const std::string& Connection::local_node() const { return local_node_; }

Time Connection::next_arrival(Network* net) {
  Time lat = latency_;
  Time earliest = sim_.now();
  if (net) {
    auto peer = peer_.lock();
    const std::string& remote = peer ? peer->local_node_ : local_node_;
    lat += net->fault_delay(local_node_, remote);
  }
  Time arrival = std::max(last_arrival_, earliest + lat);
  last_arrival_ = arrival;
  return arrival;
}

void Connection::send(ByteView data) {
  if (!open_ || data.empty()) return;
  if (net_)
    net_->payload_bytes_copied_.fetch_add(data.size(),
                                          std::memory_order_relaxed);
  send_shared(SharedBytes(data));
}

void Connection::send(SharedBytes data) {
  if (!open_ || data.empty()) return;
  send_shared(std::move(data));
}

void Connection::send_shared(SharedBytes data) {
  auto peer = peer_.lock();
  if (!peer) return;
  if (net_) {
    // Crashed or partitioned-away endpoints blackhole traffic. The
    // connection itself is severed separately; this guards the window
    // between the fault firing and the close delivery.
    if (!net_->link_up(local_node_, peer->local_node_)) return;
    net_->payload_bytes_sent_.fetch_add(data.size(),
                                        std::memory_order_relaxed);
  }
  // FIFO per direction: never deliver earlier than a previous delivery.
  Time arrival = next_arrival(net_);
  // Batch into the open delivery event iff appending cannot change what
  // any observer sees: the batch hasn't fired, it arrives at the same
  // instant, and — decisive — its event is still this island's most
  // recently scheduled one, so no event's sequence number lies between the
  // batch and the event this send would otherwise have created.
  // Cross-island deliveries return id 0 from schedule_on and therefore
  // never batch: each send is its own mailbox message, and the barrier
  // merge preserves their order. Batching is disabled entirely once
  // islands are configured — a same-island send pair would otherwise
  // coalesce into one on_data while the identical pair across a cut
  // arrives as two, making delivery granularity depend on island
  // layout. Configured mode (any count, including 1) delivers one
  // event per send everywhere; only the legacy no-knob path batches.
  if (!sim_.islands_configured() &&
      outbox_ && !outbox_->fired && outbox_event_ != 0 &&
      outbox_arrival_ == arrival &&
      sim_.last_scheduled_id() == outbox_event_) {
    outbox_->chunks.push_back(std::move(data));
    return;
  }
  auto batch = std::make_shared<OutBatch>();
  batch->chunks.push_back(std::move(data));
  outbox_ = batch;
  outbox_arrival_ = arrival;
  outbox_event_ = sim_.schedule_on(peer->island_, arrival, [peer, batch] {
    batch->fired = true;
    peer->deliver_batch(*batch);
  });
}

void Connection::close() {
  if (!open_) return;
  open_ = false;
  auto peer = peer_.lock();
  if (!peer) return;
  Time arrival = next_arrival(net_);
  sim_.schedule_on(peer->island_, arrival, [peer] { peer->deliver_close(); });
}

void Connection::abort() {
  auto self = shared_from_this();
  auto peer = peer_.lock();
  open_ = false;
  aborted_ = true;
  pending_.clear();
  // Crash semantics: this half observes the break "now"; anything still
  // in flight to it is lost (deliver() drops data once aborted_ is set —
  // even a delivery already queued for this very tick, which would
  // otherwise run before the deliver_close scheduled below).
  sim_.schedule_on(island_, sim_.now(), [self] { self->deliver_close(); });
  if (!peer) return;
  if (sim_.islands_configured()) {
    // Islands mode: the break propagates to the peer like a RST — one
    // link latency later (after any data already on the wire, per the
    // FIFO watermark). This keeps the notification outside the
    // conservative window for cross-island pairs, and applies to
    // same-island pairs too so islands=1 replays are byte-identical to
    // any island count.
    Time arrival = next_arrival(net_);
    sim_.schedule_on(peer->island_, arrival, [peer] {
      peer->open_ = false;
      peer->aborted_ = true;
      peer->pending_.clear();
      peer->deliver_close();
    });
  } else {
    // Legacy semantics: both halves see the break in the same tick.
    peer->open_ = false;
    peer->aborted_ = true;
    peer->pending_.clear();
    sim_.schedule(0, [peer] { peer->deliver_close(); });
  }
}

void Connection::set_on_data(DataHandler h) {
  on_data_ = std::move(h);
  if (!pending_.empty() || close_pending_) {
    auto self = shared_from_this();
    sim_.schedule_on(island_, sim_.now(), [self] { self->flush_pending(); });
  }
}

void Connection::set_on_close(CloseHandler h) {
  on_close_ = std::move(h);
  if (close_pending_ && pending_.empty()) {
    auto self = shared_from_this();
    sim_.schedule_on(island_, sim_.now(), [self] { self->flush_pending(); });
  }
}

void Connection::deliver_batch(OutBatch& batch) {
  if (close_delivered_ || aborted_) return;
  if (pending_.empty()) {
    pending_.swap(batch.chunks);
  } else {
    for (auto& c : batch.chunks) pending_.push_back(std::move(c));
    batch.chunks.clear();
  }
  flush_pending();
}

void Connection::deliver_close() {
  if (close_delivered_) return;
  open_ = false;
  close_pending_ = true;
  flush_pending();
}

void Connection::flush_pending() {
  if (close_delivered_) return;
  // While this half's handlers run, it is the ambient flow: connects they
  // issue derive their FlowContext (trace ids, execution index) from it.
  FlowScope flow_scope(this);
  if (!pending_.empty() && on_data_) {
    // Handler may re-enter (e.g. respond synchronously); keep state sane by
    // swapping out first.
    std::vector<SharedBytes> chunks;
    chunks.swap(pending_);
    if (chunks.size() == 1) {
      on_data_(chunks.front().view());  // common case: zero-copy handoff
    } else {
      Bytes joined;
      size_t total = 0;
      for (const auto& c : chunks) total += c.size();
      joined.reserve(total);
      for (const auto& c : chunks) joined.append(c.view());
      on_data_(joined);
    }
  }
  if (close_pending_ && pending_.empty()) {
    close_delivered_ = true;
    open_ = false;
    if (on_close_) {
      auto h = std::move(on_close_);
      on_close_ = nullptr;
      h();
    }
  }
}

Network::Network(Simulator& sim, Time default_latency)
    : sim_(sim), default_latency_(default_latency) {}

void Network::listen(const std::string& address, AcceptHandler on_accept) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_[address] = std::move(on_accept);
}

void Network::unlisten(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(address);
}

bool Network::has_listener(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  return listeners_.count(address) > 0;
}

void Network::set_node_island(const std::string& node, IslandId island) {
  node_islands_[node] = island;
}

IslandId Network::node_island(const std::string& node) const {
  auto it = node_islands_.find(node);
  return it == node_islands_.end() ? 0 : it->second;
}

std::vector<std::string> Network::listener_nodes() const {
  std::vector<std::string> nodes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes.reserve(listeners_.size());
    for (const auto& [address, fn] : listeners_) nodes.push_back(node_of(address));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

void Network::set_island_router(const std::string& address,
                                IslandRouter router) {
  island_routers_[address] = std::move(router);
}

ConnPtr Network::connect(const std::string& address, ConnectMeta meta) {
  if (refused_addresses_.count(address) > 0) {
    RDDR_LOG_DEBUG("connect to %s refused (fault injected)", address.c_str());
    return nullptr;
  }
  std::string src_node = node_of(meta.source);
  std::string dst_node = node_of(address);
  if (node_down(src_node) || node_down(dst_node) ||
      !link_up(src_node, dst_node)) {
    RDDR_LOG_DEBUG("connect %s -> %s refused (node down or partitioned)",
                   src_node.c_str(), address.c_str());
    return nullptr;
  }
  // Ambient flow derivation: a connect() issued from inside another
  // connection's handlers (or a FlowScope a service re-installed around
  // deferred work) inherits that flow. Explicit fields win; only unset
  // ones are derived. The execution index is extended by one frame —
  // call site = (dialing node, dialed address), seq = that site's
  // invocation ordinal within the ambient connection's execution — which
  // is a pure function of simulated execution order, so the derived index
  // is byte-identical across island layouts and thread counts.
  if (Connection* amb = current_flow()) {
    const FlowContext& in = amb->flow();
    if (meta.flow.trace_id == 0) {
      meta.flow.trace_id = in.trace_id;
      meta.flow.parent_span = in.parent_span;
    }
    if (meta.flow.index.empty()) {
      const uint64_t site = ExecutionIndex::site_id(src_node, address);
      meta.flow.index = in.index.child(site, amb->next_child_seq(site));
    }
  }
  // Island placement (outside the lock: routers are user code). The
  // client half joins the dialing context's island; the server half
  // joins the listener node's island unless a router overrides it —
  // routing is decided here, at dial time, so both halves are born on
  // their final islands and never migrate.
  IslandId client_island = current_island();
  if (client_island >= sim_.island_count()) client_island = 0;
  IslandId server_island = node_island(dst_node);
  uint32_t route_hint = UINT32_MAX;
  auto rit = island_routers_.find(address);
  if (rit != island_routers_.end())
    server_island = rit->second(meta, route_hint);
  if (server_island >= sim_.island_count()) server_island = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listeners_.find(address) == listeners_.end()) {
      RDDR_LOG_DEBUG("connect to %s refused (no listener)", address.c_str());
      return nullptr;
    }
    auto depth_it = accept_queue_depth_.find(address);
    if (depth_it != accept_queue_depth_.end() && depth_it->second > 0 &&
        pending_accepts_[address] >= depth_it->second) {
      accepts_refused_.fetch_add(1, std::memory_order_relaxed);
      RDDR_LOG_DEBUG("connect to %s refused (accept queue full at %zu)",
                     address.c_str(), depth_it->second);
      return nullptr;
    }
    ++pending_accepts_[address];
  }
  // Per-island id spaces (no cross-thread coordination; dense legacy ids
  // when only island 0 exists).
  uint64_t id = (static_cast<uint64_t>(client_island) << 48) |
                ++next_conn_local_[client_island];
  conns_opened_.fetch_add(1, std::memory_order_relaxed);
  Time lat = default_latency_;
  Time seen = min_latency_seen_.load(std::memory_order_relaxed);
  while (lat < seen && !min_latency_seen_.compare_exchange_weak(
                           seen, lat, std::memory_order_relaxed)) {
  }
  auto client = std::shared_ptr<Connection>(new Connection(
      sim_, id, default_latency_, meta, address, /*is_client_half=*/true));
  auto server = std::shared_ptr<Connection>(new Connection(
      sim_, id, default_latency_, meta, address, /*is_client_half=*/false));
  client->peer_ = server;
  server->peer_ = client;
  client->net_ = this;
  server->net_ = this;
  client->island_ = client_island;
  server->island_ = server_island;
  client->route_hint_ = route_hint;
  server->route_hint_ = route_hint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.push_back(client);
  }
  // Accept fires after one link latency, on the server half's island;
  // re-check the listener and fault state then so a service that stopped
  // (or crashed) in the meantime refuses cleanly.
  sim_.schedule_on(server_island, sim_.now() + default_latency_, [server] {
    Network* net = server->net_;
    const std::string& addr = server->dialed_address();
    AcceptHandler handler;
    {
      std::lock_guard<std::mutex> lock(net->mu_);
      auto pend = net->pending_accepts_.find(addr);
      if (pend != net->pending_accepts_.end() && pend->second > 0)
        --pend->second;
      auto lit = net->listeners_.find(addr);
      if (lit != net->listeners_.end()) handler = lit->second;
    }
    if (!handler || net->node_down(node_of(addr))) {
      server->close();
      return;
    }
    // Accept handlers run under the new connection's flow: dials they
    // issue while accepting nest under the inbound execution index.
    FlowScope flow_scope(server.get());
    handler(server);
  });
  return client;
}

void Network::set_accept_queue_depth(const std::string& address,
                                     size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth > 0) accept_queue_depth_[address] = depth;
  else accept_queue_depth_.erase(address);
}

size_t Network::accept_queue_len(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_accepts_.find(address);
  return it == pending_accepts_.end() ? 0 : it->second;
}

// ---- fault injection ----

std::string Network::node_of(const std::string& address_or_name) {
  size_t colon = address_or_name.find(':');
  return colon == std::string::npos ? address_or_name
                                    : address_or_name.substr(0, colon);
}

void Network::sever_matching(
    const std::function<bool(const Connection&, const Connection&)>& pred) {
  // Collect first: abort() schedules events and conn handlers may mutate
  // the registry re-entrantly via new connects.
  std::vector<ConnPtr> doomed;
  std::lock_guard<std::mutex> lock(mu_);
  registry_.erase(
      std::remove_if(registry_.begin(), registry_.end(),
                     [&](const std::weak_ptr<Connection>& w) {
                       auto c = w.lock();
                       if (!c) return true;  // prune expired
                       auto peer = c->peer_.lock();
                       if (!peer) return true;
                       if (pred(*c, *peer)) doomed.push_back(c);
                       return false;
                     }),
      registry_.end());
  for (auto& c : doomed) c->abort();
}

void Network::crash_node(const std::string& node) {
  down_nodes_.insert(node);
  RDDR_LOG_INFO("fault: node %s crashed", node.c_str());
  sever_node(node);
}

void Network::sever_node(const std::string& node) {
  sever_matching([&](const Connection& a, const Connection& b) {
    return a.local_node() == node || b.local_node() == node;
  });
}

void Network::restart_node(const std::string& node) {
  down_nodes_.erase(node);
  RDDR_LOG_INFO("fault: node %s restarted", node.c_str());
}

bool Network::node_down(const std::string& node) const {
  return down_nodes_.count(node) > 0;
}

void Network::refuse_address(const std::string& address, bool refuse) {
  if (refuse) refused_addresses_.insert(address);
  else refused_addresses_.erase(address);
}

void Network::set_node_extra_latency(const std::string& node, Time extra) {
  if (extra > 0) extra_latency_[node] = extra;
  else extra_latency_.erase(node);
}

void Network::stall_node_egress_until(const std::string& node, Time until) {
  if (until > sim_.now()) stall_until_[node] = until;
  else stall_until_.erase(node);
}

void Network::partition(const std::set<std::string>& group) {
  partitioned_ = true;
  partition_group_ = group;
  RDDR_LOG_INFO("fault: partition isolating %zu node(s)", group.size());
  sever_matching([&](const Connection& a, const Connection& b) {
    return group.count(a.local_node()) != group.count(b.local_node());
  });
}

void Network::heal_partition() {
  partitioned_ = false;
  partition_group_.clear();
  RDDR_LOG_INFO("fault: partition healed");
}

bool Network::link_up(const std::string& a, const std::string& b) const {
  if (node_down(a) || node_down(b)) return false;
  if (partitioned_ &&
      partition_group_.count(a) != partition_group_.count(b))
    return false;
  return true;
}

Time Network::fault_delay(const std::string& from_node,
                          const std::string& to_node) const {
  Time delay = 0;
  auto it = extra_latency_.find(from_node);
  if (it != extra_latency_.end()) delay += it->second;
  it = extra_latency_.find(to_node);
  if (it != extra_latency_.end()) delay += it->second;
  auto st = stall_until_.find(from_node);
  if (st != stall_until_.end() && st->second > sim_.now())
    delay += st->second - sim_.now();
  return delay;
}

size_t Network::live_connections(const std::string& node) {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  registry_.erase(std::remove_if(registry_.begin(), registry_.end(),
                                 [&](const std::weak_ptr<Connection>& w) {
                                   auto c = w.lock();
                                   if (!c) return true;
                                   auto peer = c->peer_.lock();
                                   bool touches =
                                       c->local_node() == node ||
                                       (peer && peer->local_node() == node);
                                   if (touches && (c->is_open() ||
                                                   (peer && peer->is_open())))
                                     ++n;
                                   return false;
                                 }),
                  registry_.end());
  return n;
}

}  // namespace rddr::sim
