#include "netsim/network.h"

#include <algorithm>

#include "common/log.h"

namespace rddr::sim {

Connection::Connection(Simulator& sim, uint64_t id, Time latency,
                       ConnectMeta meta, std::string dialed_address)
    : sim_(sim),
      id_(id),
      latency_(latency),
      meta_(std::move(meta)),
      dialed_address_(std::move(dialed_address)) {}

void Connection::send(ByteView data) {
  if (!open_ || data.empty()) return;
  auto peer = peer_.lock();
  if (!peer) return;
  // FIFO per direction: never deliver earlier than a previous delivery.
  Time arrival = std::max(last_arrival_, sim_.now() + latency_);
  last_arrival_ = arrival;
  sim_.schedule_at(arrival, [peer, buf = Bytes(data)]() mutable {
    peer->deliver(std::move(buf));
  });
}

void Connection::close() {
  if (!open_) return;
  open_ = false;
  auto peer = peer_.lock();
  if (!peer) return;
  Time arrival = std::max(last_arrival_, sim_.now() + latency_);
  last_arrival_ = arrival;
  sim_.schedule_at(arrival, [peer] { peer->deliver_close(); });
}

void Connection::set_on_data(DataHandler h) {
  on_data_ = std::move(h);
  if (!pending_.empty() || close_pending_) {
    auto self = shared_from_this();
    sim_.schedule(0, [self] { self->flush_pending(); });
  }
}

void Connection::set_on_close(CloseHandler h) {
  on_close_ = std::move(h);
  if (close_pending_ && pending_.empty()) {
    auto self = shared_from_this();
    sim_.schedule(0, [self] { self->flush_pending(); });
  }
}

void Connection::deliver(Bytes data) {
  if (close_delivered_) return;
  pending_.append(data);
  flush_pending();
}

void Connection::deliver_close() {
  if (close_delivered_) return;
  open_ = false;
  close_pending_ = true;
  flush_pending();
}

void Connection::flush_pending() {
  if (close_delivered_) return;
  if (!pending_.empty() && on_data_) {
    Bytes chunk;
    chunk.swap(pending_);
    // Handler may re-enter (e.g. respond synchronously); keep state sane by
    // swapping out first.
    on_data_(chunk);
  }
  if (close_pending_ && pending_.empty()) {
    close_delivered_ = true;
    open_ = false;
    if (on_close_) {
      auto h = std::move(on_close_);
      on_close_ = nullptr;
      h();
    }
  }
}

Network::Network(Simulator& sim, Time default_latency)
    : sim_(sim), default_latency_(default_latency) {}

void Network::listen(const std::string& address, AcceptHandler on_accept) {
  listeners_[address] = std::move(on_accept);
}

void Network::unlisten(const std::string& address) { listeners_.erase(address); }

bool Network::has_listener(const std::string& address) const {
  return listeners_.count(address) > 0;
}

ConnPtr Network::connect(const std::string& address, ConnectMeta meta) {
  auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    RDDR_LOG_DEBUG("connect to %s refused (no listener)", address.c_str());
    return nullptr;
  }
  uint64_t id = next_conn_id_++;
  auto client = std::shared_ptr<Connection>(
      new Connection(sim_, id, default_latency_, meta, address));
  auto server = std::shared_ptr<Connection>(
      new Connection(sim_, id, default_latency_, meta, address));
  client->peer_ = server;
  server->peer_ = client;
  // Accept fires after one link latency; re-check the listener then so a
  // service that stopped in the meantime refuses cleanly.
  sim_.schedule(default_latency_, [this, address, server] {
    auto lit = listeners_.find(address);
    if (lit == listeners_.end()) {
      server->close();
      return;
    }
    lit->second(server);
  });
  return client;
}

}  // namespace rddr::sim
