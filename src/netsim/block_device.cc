#include "netsim/block_device.h"

namespace rddr::sim {

BlockDevice::BlockDevice(Options opts)
    : opts_(opts), rng_(Rng(opts.rng_seed).fork(0xB10CDEULL)) {}

Time BlockDevice::write(uint64_t block, Bytes data) {
  counters_.writes++;
  counters_.bytes_written += data.size();
  Time cost = pages_cost(data.size(), opts_.write_latency);
  staged_[block] = std::move(data);
  return cost;
}

BlockDevice::ReadResult BlockDevice::read(uint64_t block) const {
  counters_.reads++;
  ReadResult r;
  const Bytes* src = nullptr;
  if (auto it = staged_.find(block); it != staged_.end()) src = &it->second;
  else if (auto dt = durable_.find(block); dt != durable_.end())
    src = &dt->second;
  r.exists = src != nullptr;
  if (!r.exists) {
    r.latency = opts_.read_latency;
    return r;
  }
  r.latency = pages_cost(src->size(), opts_.read_latency);
  if (opts_.faults.read_error_prob > 0 &&
      rng_.uniform01() < opts_.faults.read_error_prob) {
    counters_.read_errors++;
    return r;  // ok stays false: transient error, content not delivered
  }
  r.ok = true;
  r.data = *src;
  counters_.bytes_read += src->size();
  return r;
}

Time BlockDevice::sync() {
  counters_.syncs++;
  Time cost = opts_.sync_latency;
  for (auto& [block, data] : staged_) {
    cost += pages_cost(data.size(), opts_.write_latency);
    auto it = durable_.find(block);
    if (it != durable_.end()) durable_bytes_ -= it->second.size();
    durable_bytes_ += data.size();
    durable_[block] = std::move(data);
  }
  staged_.clear();
  return cost;
}

void BlockDevice::trim(uint64_t block) {
  staged_.erase(block);
  auto it = durable_.find(block);
  if (it != durable_.end()) {
    durable_bytes_ -= it->second.size();
    durable_.erase(it);
  }
}

void BlockDevice::crash() {
  counters_.crashes++;
  uint64_t forced_block = 0;
  bool have_forced = false;
  if (force_torn_ && !staged_.empty()) {
    forced_block = staged_.rbegin()->first;  // the in-flight tail
    have_forced = true;
  }
  force_torn_ = false;
  for (auto& [block, data] : staged_) {
    double roll = rng_.uniform01();
    bool torn = (have_forced && block == forced_block) ||
                roll < opts_.faults.torn_write_prob;
    bool lost = !torn && roll < opts_.faults.torn_write_prob +
                             opts_.faults.lost_write_prob;
    if (lost) {
      counters_.lost_writes++;
      continue;  // staged content vanishes; durable image keeps the old
    }
    if (torn && data.size() > 1) {
      counters_.torn_writes++;
      // A prefix of the new content lands over the old: the classic torn
      // page. Keep at least one byte and strictly less than the whole so
      // checksums genuinely fail.
      size_t keep = 1 + static_cast<size_t>(rng_.uniform(
                            0, static_cast<int64_t>(data.size()) - 2));
      Bytes mangled = data.substr(0, keep);
      auto it = durable_.find(block);
      if (it != durable_.end() && it->second.size() > mangled.size())
        mangled += it->second.substr(mangled.size());
      auto dt = durable_.find(block);
      if (dt != durable_.end()) durable_bytes_ -= dt->second.size();
      durable_bytes_ += mangled.size();
      durable_[block] = std::move(mangled);
      continue;
    }
    auto it = durable_.find(block);
    if (it != durable_.end()) durable_bytes_ -= it->second.size();
    durable_bytes_ += data.size();
    durable_[block] = std::move(data);
  }
  staged_.clear();
}

}  // namespace rddr::sim
