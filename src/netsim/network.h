// Simulated network: listeners, duplex byte-stream connections, latency.
//
// Substitutes for TCP sockets (see DESIGN.md). The abstraction matches what
// RDDR's proxies need from a transport: ordered 8-bit-clean byte streams,
// connect/accept by address, graceful close, and connection metadata
// (which container opened the connection, and an optional flow label used
// by the outgoing proxy to group the N instances' backend connections).
//
// Guarantees:
//  * Per-direction FIFO: bytes arrive in the order sent.
//  * Close ordering: a peer sees all bytes sent before close() before its
//    on_close fires.
//  * Data sent before the receiving side installs a handler is buffered and
//    delivered when the handler is installed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "netsim/simulator.h"

namespace rddr::sim {

class Network;

/// Metadata attached to a connection at connect() time.
struct ConnectMeta {
  /// Name of the container/process opening the connection (diagnostics and
  /// outgoing-proxy grouping).
  std::string source;
  /// Optional flow label: the outgoing proxy groups the N instances'
  /// connections that carry the same label (paper §IV-B: "merge requests to
  /// downstream microservices").
  std::string flow_label;
};

/// One endpoint of a duplex byte-stream connection. Obtained from
/// Network::connect (client half) or a listener callback (server half).
/// Lifetime is shared between the two halves and any in-flight events.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using DataHandler = std::function<void(ByteView)>;
  using CloseHandler = std::function<void()>;

  /// Sends bytes to the peer; delivered after the link latency. No-op after
  /// close.
  void send(ByteView data);

  /// Gracefully closes both directions. The peer receives all bytes already
  /// sent, then its on_close handler fires. Idempotent.
  void close();

  /// True until either side closed.
  bool is_open() const { return open_; }

  /// Installs the data handler; any buffered bytes are delivered
  /// immediately (in a scheduled event, preserving run-to-completion).
  void set_on_data(DataHandler h);

  /// Installs the close handler; fires once, after all data is delivered.
  void set_on_close(CloseHandler h);

  /// Metadata supplied by the connecting side.
  const ConnectMeta& meta() const { return meta_; }

  /// Address the client dialled (both halves see the same value).
  const std::string& dialed_address() const { return dialed_address_; }

  /// Unique id (diagnostics; stable within a simulation).
  uint64_t id() const { return id_; }

 private:
  friend class Network;

  Connection(Simulator& sim, uint64_t id, Time latency, ConnectMeta meta,
             std::string dialed_address);

  void deliver(Bytes data);      // runs on the *receiving* half
  void deliver_close();          // runs on the *receiving* half
  void flush_pending();

  Simulator& sim_;
  uint64_t id_;
  Time latency_;
  ConnectMeta meta_;
  std::string dialed_address_;
  std::weak_ptr<Connection> peer_;
  bool open_ = true;
  bool close_delivered_ = false;
  bool close_pending_ = false;
  Time last_arrival_ = 0;  // per-direction FIFO watermark (arrivals at peer)
  Bytes pending_;          // received but not yet handed to on_data
  DataHandler on_data_;
  CloseHandler on_close_;
};

using ConnPtr = std::shared_ptr<Connection>;

/// Address registry + connection factory.
class Network {
 public:
  using AcceptHandler = std::function<void(ConnPtr)>;

  explicit Network(Simulator& sim, Time default_latency = 50 * kMicrosecond);

  /// Registers a listener for `address` (e.g. "minipg-0:5432"). Replaces any
  /// existing listener for the same address.
  void listen(const std::string& address, AcceptHandler on_accept);

  /// Removes a listener.
  void unlisten(const std::string& address);

  /// True if some listener is registered at `address`.
  bool has_listener(const std::string& address) const;

  /// Dials `address`. Returns the client half, or nullptr if nothing
  /// listens there (connection refused). The listener's accept handler is
  /// invoked after one link latency with the server half.
  ConnPtr connect(const std::string& address, ConnectMeta meta = {});

  /// Link latency applied to each direction of new connections.
  void set_default_latency(Time latency) { default_latency_ = latency; }
  Time default_latency() const { return default_latency_; }

  Simulator& simulator() { return sim_; }

  /// Total connections ever opened (diagnostics).
  uint64_t connections_opened() const { return next_conn_id_ - 1; }

 private:
  Simulator& sim_;
  Time default_latency_;
  uint64_t next_conn_id_ = 1;
  std::map<std::string, AcceptHandler> listeners_;
};

}  // namespace rddr::sim
