// Simulated network: listeners, duplex byte-stream connections, latency.
//
// Substitutes for TCP sockets (see DESIGN.md). The abstraction matches what
// RDDR's proxies need from a transport: ordered 8-bit-clean byte streams,
// connect/accept by address, graceful close, and connection metadata
// (which container opened the connection, and an optional flow label used
// by the outgoing proxy to group the N instances' backend connections).
//
// Guarantees:
//  * Per-direction FIFO: bytes arrive in the order sent.
//  * Close ordering: a peer sees all bytes sent before close() before its
//    on_close fires.
//  * Data sent before the receiving side installs a handler is buffered and
//    delivered when the handler is installed.
//
// Data plane (see DESIGN.md "Data plane & memory"): payloads travel as
// ref-counted SharedBytes. send(SharedBytes) puts a buffer on the wire
// without copying it — the same buffer can be in flight on many
// connections at once (the proxies' N-way fan-out). send(ByteView) is the
// compatibility path that materialises one copy on entry. Same-tick sends
// on one connection are batched into a single delivery event when doing so
// provably cannot reorder anything (no other event was scheduled in
// between), so a burst of writes costs one event, not one per write.
//
// Fault injection: the network additionally models node crashes, refused
// addresses, per-node latency spikes, one-sided egress stalls, and
// partitions (see netsim/fault.h for the virtual-clock scheduling layer).
// A "node" is the part of an address before the ':' — "pg-1" for the
// listener "pg-1:5432" — or a connecting container's ConnectMeta::source.
// Every fault is plain deterministic state on the Network, so seeded runs
// replay byte-identically with faults active.
// Islands (DESIGN.md "Parallel simulation"): every connection half lives
// on the island of the node it runs on (client half: the dialing
// container's island at connect() time; server half: the listener node's
// island, or whatever an installed island router decides). Deliveries
// targeting the peer half are scheduled on the *peer's* island, so a
// cross-island send travels through the executor's mailbox and arrives
// at least one link latency later — which is exactly the conservative
// lookahead the barrier relies on. On a simulator without islands all of
// this degenerates to the historical single-loop behaviour.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/exec_index.h"
#include "common/shared_bytes.h"
#include "netsim/simulator.h"

namespace rddr::sim {

class Network;

/// Per-flow context carried across a connect(): everything about *why* this
/// connection exists, as opposed to *who* opened it (ConnectMeta::source).
/// Propagated automatically: while a connection's data/close handlers run,
/// that connection is the ambient flow (FlowScope), and any connect() they
/// issue derives its FlowContext from it — trace ids are inherited and the
/// execution index is extended by one (call site, invocation-seq) frame.
/// Explicitly set fields always win over derivation.
struct FlowContext {
  /// Optional flow label: the outgoing proxy groups the N instances'
  /// connections that carry the same label (paper §IV-B: "merge requests to
  /// downstream microservices").
  std::string label;
  /// Optional trace context (obs/trace.h ids; plain integers here so netsim
  /// stays independent of the obs types). 0 means "no trace": the accepting
  /// service starts its own if it traces.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  /// Deterministic call-path index from the originating edge request to
  /// this connection's dial site (common/exec_index.h). Empty for root
  /// dials outside any protected flow.
  ExecutionIndex index;
};

/// Metadata attached to a connection at connect() time.
struct ConnectMeta {
  /// Name of the container/process opening the connection (diagnostics and
  /// outgoing-proxy grouping).
  std::string source;
  /// Flow identity: label, trace ids and execution index. Fields left at
  /// their defaults are auto-derived from the ambient flow (see above).
  FlowContext flow;
};

/// One endpoint of a duplex byte-stream connection. Obtained from
/// Network::connect (client half) or a listener callback (server half).
/// Lifetime is shared between the two halves and any in-flight events.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using DataHandler = std::function<void(ByteView)>;
  using CloseHandler = std::function<void()>;

  /// Sends bytes to the peer; delivered after the link latency. No-op after
  /// close. This overload copies `data` once into the shared data plane
  /// (counted in Network::payload_bytes_copied) — senders that own their
  /// buffer should wrap it in SharedBytes and use the overload below.
  void send(ByteView data);

  /// Zero-copy send: the connection takes a reference to the buffer, no
  /// bytes move. The same SharedBytes may be sent on any number of
  /// connections simultaneously (proxy fan-out).
  void send(SharedBytes data);

  /// Gracefully closes both directions. The peer receives all bytes already
  /// sent, then its on_close handler fires. Idempotent.
  void close();

  /// True until either side closed.
  bool is_open() const { return open_; }

  /// Installs the data handler; any buffered bytes are delivered
  /// immediately (in a scheduled event, preserving run-to-completion).
  void set_on_data(DataHandler h);

  /// Installs the close handler; fires once, after all data is delivered.
  void set_on_close(CloseHandler h);

  /// Metadata supplied by the connecting side.
  const ConnectMeta& meta() const { return meta_; }

  /// Flow context supplied (or auto-derived) at connect() time.
  const FlowContext& flow() const { return meta_.flow; }

  /// Next invocation ordinal for a child dial from site `site` within this
  /// connection's execution. Deterministic: counts per (connection, site)
  /// in handler execution order, which the simulator fixes independently
  /// of island layout. Used by Network::connect() when deriving a child
  /// execution index from the ambient flow.
  uint32_t next_child_seq(uint64_t site) { return child_seq_[site]++; }

  /// Address the client dialled (both halves see the same value).
  const std::string& dialed_address() const { return dialed_address_; }

  /// Unique id (diagnostics; stable within a simulation).
  uint64_t id() const { return id_; }

  /// Node this half runs on: the dialing container for the client half,
  /// the listener's node for the server half.
  const std::string& local_node() const;

  /// Island this half's events execute on (0 without islands).
  IslandId island() const { return island_; }

  /// Routing decision recorded by an island router at connect() time
  /// (Network::set_island_router); UINT32_MAX when no router ran. The
  /// frontier uses this to trust the dial-time shard choice instead of
  /// re-deriving it at accept time.
  uint32_t route_hint() const { return route_hint_; }

  /// Severs the connection abruptly (crash semantics): both halves see
  /// on_close "now"; bytes still in flight are lost. Unlike close(), the
  /// peer is NOT guaranteed to receive previously sent data first.
  void abort();

 private:
  friend class Network;

  // Same-tick sends accumulate here and ride one delivery event. `fired`
  // flips when the event runs, so a later send in the same tick (after the
  // event) opens a fresh batch instead of appending to a dead one.
  struct OutBatch {
    std::vector<SharedBytes> chunks;
    bool fired = false;
  };

  Connection(Simulator& sim, uint64_t id, Time latency, ConnectMeta meta,
             std::string dialed_address, bool is_client_half);

  void send_shared(SharedBytes data);
  void deliver_batch(OutBatch& batch);  // runs on the *receiving* half
  void deliver_close();                 // runs on the *receiving* half
  void flush_pending();
  Time next_arrival(Network* net);  // FIFO watermark + fault adjustments

  Simulator& sim_;
  uint64_t id_;
  Time latency_;
  ConnectMeta meta_;
  std::string dialed_address_;
  bool is_client_half_;
  IslandId island_ = 0;
  uint32_t route_hint_ = UINT32_MAX;
  std::string local_node_;   // cached node name for fault lookups
  Network* net_ = nullptr;   // set by Network; faults consulted per send
  std::weak_ptr<Connection> peer_;
  bool open_ = true;
  bool aborted_ = false;  // break observed "now"; drop same-tick arrivals
  bool close_delivered_ = false;
  bool close_pending_ = false;
  Time last_arrival_ = 0;  // per-direction FIFO watermark (arrivals at peer)
  std::vector<SharedBytes> pending_;  // received, not yet handed to on_data
  std::shared_ptr<OutBatch> outbox_;  // open batch on the out direction
  Time outbox_arrival_ = -1;
  uint64_t outbox_event_ = 0;  // the batch's delivery event id
  // Per-site invocation counters for execution-index derivation.
  std::map<uint64_t, uint32_t> child_seq_;
  DataHandler on_data_;
  CloseHandler on_close_;
};

using ConnPtr = std::shared_ptr<Connection>;

namespace detail {
/// Ambient connection whose handlers are currently executing on this
/// thread (nullptr outside any handler). Thread-local like the island
/// context (common/exec_context.h): islands never migrate a running
/// handler across threads, so the ambient flow is race-free by
/// construction.
inline thread_local Connection* g_current_flow = nullptr;
}  // namespace detail

/// Connection whose handlers the current thread is executing, or nullptr.
/// Network::connect() derives FlowContext defaults from it; services that
/// defer work off the handler stack (e.g. into a host task) re-install the
/// scope around the deferred body with FlowScope.
inline Connection* current_flow() { return detail::g_current_flow; }

/// RAII scope that makes `conn` the ambient flow for the calling thread.
/// Installed by the network around data/close/accept handler delivery;
/// also usable by services that run request handlers outside the delivery
/// event (restoring the previous ambient on destruction).
class FlowScope {
 public:
  explicit FlowScope(Connection* conn)
      : prev_(detail::g_current_flow) {
    detail::g_current_flow = conn;
  }
  ~FlowScope() { detail::g_current_flow = prev_; }
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  Connection* prev_;
};

/// Address registry + connection factory.
class Network {
 public:
  using AcceptHandler = std::function<void(ConnPtr)>;

  explicit Network(Simulator& sim, Time default_latency = 50 * kMicrosecond);

  /// Registers a listener for `address` (e.g. "minipg-0:5432"). Replaces any
  /// existing listener for the same address.
  void listen(const std::string& address, AcceptHandler on_accept);

  /// Removes a listener.
  void unlisten(const std::string& address);

  /// True if some listener is registered at `address`.
  bool has_listener(const std::string& address) const;

  /// Dials `address`. Returns the client half, or nullptr if nothing
  /// listens there (connection refused), the address's accept queue is
  /// full, or a fault refuses it. The listener's accept handler is
  /// invoked after one link latency with the server half.
  ConnPtr connect(const std::string& address, ConnectMeta meta = {});

  /// Bounds the listener's accept queue (the SYN-backlog analogue): at
  /// most `depth` connections may be dialed-but-not-yet-accepted at once;
  /// further connects are refused deterministically (connect() returns
  /// nullptr and `accepts_refused()` counts it). 0 (the default) restores
  /// the historical unbounded behaviour. Survives listener replacement.
  void set_accept_queue_depth(const std::string& address, size_t depth);

  /// Connections currently dialed but not yet delivered to the accept
  /// handler of `address`.
  size_t accept_queue_len(const std::string& address) const;

  /// Total connects refused because an accept queue was full.
  uint64_t accepts_refused() const {
    return accepts_refused_.load(std::memory_order_relaxed);
  }

  /// Link latency applied to each direction of new connections.
  void set_default_latency(Time latency) { default_latency_ = latency; }
  Time default_latency() const { return default_latency_; }

  Simulator& simulator() { return sim_; }

  /// Total connections ever opened (diagnostics).
  uint64_t connections_opened() const {
    return conns_opened_.load(std::memory_order_relaxed);
  }

  /// Total payload bytes put on the wire by Connection::send (both
  /// overloads). Diagnostics for the copy-efficiency benchmarks.
  uint64_t payload_bytes_sent() const {
    return payload_bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Payload bytes that were *copied* to enter the data plane — the
  /// send(ByteView) path. send(SharedBytes) moves none. Before the
  /// zero-copy overhaul every sent byte was copied, so
  /// copied/sent measures the fan-out savings directly.
  uint64_t payload_bytes_copied() const {
    return payload_bytes_copied_.load(std::memory_order_relaxed);
  }

  // ---- islands ----

  /// Pins a node name to an island: connection halves on that node and
  /// its accept events execute there. Setup-time only (before running).
  /// Unpinned nodes live on island 0.
  void set_node_island(const std::string& node, IslandId island);

  /// Island a node is pinned to (0 when unpinned).
  IslandId node_island(const std::string& node) const;

  /// Node names of every registered listener (deduplicated, sorted).
  /// Lets a scenario pin its whole service graph to an island without
  /// tracking each listen address itself.
  std::vector<std::string> listener_nodes() const;

  /// Decides the island of the *server half* for one dialed address,
  /// overriding the listener node's pin. `route_hint` (opaque to the
  /// network) is recorded on the connection for the accepting service —
  /// the frontier stores the shard index so routing is decided exactly
  /// once, at dial time. Must be deterministic given the meta. Setup-time
  /// only.
  using IslandRouter =
      std::function<IslandId(const ConnectMeta& meta, uint32_t& route_hint)>;
  void set_island_router(const std::string& address, IslandRouter router);

  /// Smallest per-direction base latency any connection was created with
  /// (including the current default). Faults only ever *add* latency on
  /// top of this, so it is a valid conservative lookahead for the
  /// parallel executor.
  Time min_link_latency() const {
    Time seen = min_latency_seen_.load(std::memory_order_relaxed);
    return std::min(seen, default_latency_);
  }

  // ---- fault injection (usually driven via FaultPlan, netsim/fault.h) ----

  /// Node name of an address ("pg-1:5432" -> "pg-1") or container name.
  static std::string node_of(const std::string& address_or_name);

  /// Crashes / restarts a node. While down, connects to or from the node
  /// are refused; crash() additionally severs every live connection
  /// touching the node (both halves get on_close, in-flight bytes lost).
  /// Listener registrations survive — a restarted node serves again
  /// immediately, modelling a container restarting on the same address.
  void crash_node(const std::string& node);
  void restart_node(const std::string& node);
  bool node_down(const std::string& node) const;

  /// Severs every live connection touching `node` without marking the
  /// node down — the teardown half of crash_node(), for a container that
  /// is stopped deliberately (its sockets die, but the node name is not
  /// refused for reuse).
  void sever_node(const std::string& node);

  /// Refuses new connections to one specific address (listener kept).
  void refuse_address(const std::string& address, bool refuse);

  /// Extra per-direction latency added to traffic touching `node`
  /// (latency spike). 0 clears.
  void set_node_extra_latency(const std::string& node, Time extra);

  /// One-sided stall: bytes *sent by* `node` before `until` are delivered
  /// no earlier than `until` (plus latency). Models a frozen-but-alive
  /// peer. `until <= now` clears.
  void stall_node_egress_until(const std::string& node, Time until);

  /// Partitions `group` from every other node: live cross-boundary
  /// connections are severed and new ones refused until heal_partition().
  /// A single partition is active at a time (the common two-way split).
  void partition(const std::set<std::string>& group);
  void heal_partition();

  /// True when traffic between the two nodes is currently possible.
  bool link_up(const std::string& a, const std::string& b) const;

  /// Fault adjustments applied to one transfer sent by `from_node` (extra
  /// latency of both endpoints plus any egress stall of the sender).
  Time fault_delay(const std::string& from_node,
                   const std::string& to_node) const;

  /// Live connections touching `node` (diagnostics and severing).
  size_t live_connections(const std::string& node);

 private:
  void sever_matching(
      const std::function<bool(const Connection&, const Connection&)>& pred);

  friend class Connection;

  Simulator& sim_;
  Time default_latency_;
  // Per-(caller-)island connection-id spaces keep id allocation
  // deterministic without cross-thread coordination: id =
  // island << 48 | island-local counter. With one island this reproduces
  // the historical dense 1,2,3,... sequence exactly.
  std::array<uint64_t, kMaxIslands> next_conn_local_{};
  std::atomic<uint64_t> conns_opened_{0};
  std::atomic<uint64_t> payload_bytes_sent_{0};
  std::atomic<uint64_t> payload_bytes_copied_{0};
  std::atomic<uint64_t> accepts_refused_{0};
  std::atomic<Time> min_latency_seen_{INT64_MAX};
  // Guards the maps that connect() (any island) and accept/listen events
  // (server islands) both touch. Never held while running user callbacks.
  // The fault-state containers below are NOT guarded: they are only
  // mutated by global events (all workers parked at a barrier) and read
  // during windows, which the barrier's acquire/release edges order.
  mutable std::mutex mu_;
  std::map<std::string, AcceptHandler> listeners_;
  std::map<std::string, size_t> accept_queue_depth_;  // 0/absent = unbounded
  std::map<std::string, size_t> pending_accepts_;
  std::map<std::string, IslandId> node_islands_;     // setup-time only
  std::map<std::string, IslandRouter> island_routers_;  // setup-time only
  std::vector<std::weak_ptr<Connection>> registry_;  // client halves
  std::set<std::string> down_nodes_;
  std::set<std::string> refused_addresses_;
  std::map<std::string, Time> extra_latency_;
  std::map<std::string, Time> stall_until_;
  bool partitioned_ = false;
  std::set<std::string> partition_group_;
};

}  // namespace rddr::sim
