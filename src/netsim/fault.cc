#include "netsim/fault.h"

namespace rddr::sim {

void FaultPlan::crash_at(Time t, const std::string& node, Host* host) {
  net_.simulator().schedule_global_at(t, [this, node, host] {
    net_.crash_node(node);
    if (host) host->fail();
  });
}

void FaultPlan::restart_at(Time t, const std::string& node, Host* host) {
  net_.simulator().schedule_global_at(t, [this, node, host] {
    net_.restart_node(node);
    if (host) host->restore();
  });
}

void FaultPlan::crash_for(Time t, Time downtime, const std::string& node,
                          Host* host) {
  crash_at(t, node, host);
  restart_at(t + downtime, node, host);
}

void FaultPlan::refuse_address_for(Time t, Time duration,
                                   const std::string& address) {
  net_.simulator().schedule_global_at(
      t, [this, address] { net_.refuse_address(address, true); });
  net_.simulator().schedule_global_at(
      t + duration, [this, address] { net_.refuse_address(address, false); });
}

void FaultPlan::latency_spike(Time t, Time duration, const std::string& node,
                              Time extra) {
  net_.simulator().schedule_global_at(
      t, [this, node, extra] { net_.set_node_extra_latency(node, extra); });
  net_.simulator().schedule_global_at(
      t + duration, [this, node] { net_.set_node_extra_latency(node, 0); });
}

void FaultPlan::stall_egress(Time t, Time duration, const std::string& node) {
  net_.simulator().schedule_global_at(t, [this, node, end = t + duration] {
    net_.stall_node_egress_until(node, end);
  });
}

void FaultPlan::partition_for(Time t, Time duration,
                              std::set<std::string> group) {
  net_.simulator().schedule_global_at(
      t, [this, group = std::move(group)] { net_.partition(group); });
  net_.simulator().schedule_global_at(t + duration,
                               [this] { net_.heal_partition(); });
}

}  // namespace rddr::sim
