#include "netsim/host.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rddr::sim {

namespace {
// Completion events are scheduled on an integer-nanosecond clock, so a task
// can be up to ~1ns of core-work short when its event fires. The epsilon
// absorbs that truncation error (2ns of core-seconds is far below any real
// task cost in this repo).
constexpr double kWorkEpsilon = 2e-9;
}

Host::Host(Simulator& sim, std::string name, int cores,
           int64_t memory_capacity_bytes)
    : sim_(sim),
      name_(std::move(name)),
      cores_(cores),
      memory_capacity_(memory_capacity_bytes) {
  assert(cores_ > 0);
  last_settle_ = sim_.now();
  metrics_epoch_ = sim_.now();
  busy_track_.update(sim_.now(), 0);
  mem_track_.update(sim_.now(), 0);
}

Host::~Host() {
  if (completion_event_) sim_.cancel(completion_event_);
  if (sample_event_) sim_.cancel(sample_event_);
}

namespace {
// Min-heap order on (finish_v, seq) for std::push_heap/pop_heap.
struct LaterFinish {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    if (a.finish_v != b.finish_v) return a.finish_v > b.finish_v;
    return a.seq > b.seq;
  }
};
}  // namespace

double Host::per_task_rate() const {
  if (heap_.empty()) return 0.0;
  const double n = static_cast<double>(heap_.size());
  return std::min(1.0, static_cast<double>(cores_) / n);
}

void Host::settle() {
  const Time now = sim_.now();
  if (now > last_settle_ && !heap_.empty())
    vwork_ += to_seconds(now - last_settle_) * per_task_rate();
  last_settle_ = now;
}

void Host::reschedule() {
  if (completion_event_) {
    sim_.cancel(completion_event_);
    completion_event_ = 0;
  }
  busy_track_.update(sim_.now(),
                     std::min<double>(static_cast<double>(heap_.size()),
                                      static_cast<double>(cores_)));
  if (heap_.empty()) return;
  const double min_remaining = std::max(heap_.front().finish_v - vwork_, 0.0);
  const double rate = per_task_rate();
  // +1ns guarantees the event lands at-or-after the true completion instant
  // despite integer truncation, so every event makes progress.
  const Time dt = from_seconds(min_remaining / rate) + 1;
  completion_event_ =
      sim_.schedule(std::max<Time>(dt, 1), [this] { on_completion_event(); });
}

void Host::on_completion_event() {
  completion_event_ = 0;
  settle();
  finished_.clear();
  while (!heap_.empty() && heap_.front().finish_v - vwork_ <= kWorkEpsilon) {
    std::pop_heap(heap_.begin(), heap_.end(), LaterFinish{});
    finished_.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  reschedule();
  // Callbacks run last (they may re-enter run_task and reschedule again),
  // in admission order — the order the old task-list walk produced for
  // tasks finishing in the same event.
  std::sort(finished_.begin(), finished_.end(),
            [](const Task& a, const Task& b) { return a.seq < b.seq; });
  for (auto& t : finished_)
    if (t.done) t.done();
  finished_.clear();
}

void Host::run_task(double cpu_seconds, EventFn done) {
  if (failed_) return;  // crashed machine: the work is lost
  settle();
  heap_.push_back(
      Task{vwork_ + std::max(cpu_seconds, 0.0), task_seq_++, std::move(done)});
  std::push_heap(heap_.begin(), heap_.end(), LaterFinish{});
  reschedule();
}

void Host::fail() {
  if (failed_) return;
  settle();
  failed_ = true;
  heap_.clear();
  reschedule();
}

void Host::restore() {
  if (!failed_) return;
  failed_ = false;
  last_settle_ = sim_.now();
}

void Host::charge_memory(int64_t bytes) {
  memory_bytes_ += bytes;
  mem_track_.update(sim_.now(), static_cast<double>(memory_bytes_));
}

void Host::release_memory(int64_t bytes) {
  memory_bytes_ -= bytes;
  assert(memory_bytes_ >= 0);
  mem_track_.update(sim_.now(), static_cast<double>(memory_bytes_));
}

double Host::busy_core_seconds() const {
  return busy_track_.integral(sim_.now()) / 1e9;
}

double Host::mean_utilization() const {
  return busy_track_.mean(sim_.now()) / static_cast<double>(cores_);
}

void Host::reset_metrics() {
  settle();
  metrics_epoch_ = sim_.now();
  busy_track_ = TimeWeightedValue();
  busy_track_.update(sim_.now(),
                     std::min<double>(static_cast<double>(heap_.size()),
                                      static_cast<double>(cores_)));
  mem_track_ = TimeWeightedValue();
  mem_track_.update(sim_.now(), static_cast<double>(memory_bytes_));
  samples_.clear();
}

double Host::cpu_pct_now() const {
  return 100.0 *
         std::min<double>(static_cast<double>(heap_.size()),
                          static_cast<double>(cores_)) /
         static_cast<double>(cores_);
}

void Host::bind_metrics(obs::MetricsRegistry* reg, const std::string& prefix) {
  if (!reg) {
    cpu_gauge_ = nullptr;
    mem_gauge_ = nullptr;
    return;
  }
  const std::string& p = prefix.empty() ? name_ : prefix;
  cpu_gauge_ = reg->gauge(p + ".cpu_pct");
  mem_gauge_ = reg->gauge(p + ".mem_bytes");
  cpu_gauge_->set(cpu_pct_now());
  mem_gauge_->set(static_cast<double>(memory_bytes_));
}

void Host::start_sampling(Time interval) {
  assert(interval > 0);
  stop_sampling();
  sample_interval_ = interval;
  // Sample at t0 too (instantaneous), then interval means.
  samples_.push_back(ResourceSample{sim_.now(), cpu_pct_now(),
                                    static_cast<double>(memory_bytes_)});
  last_sample_busy_integral_ = busy_track_.integral(sim_.now());
  if (cpu_gauge_) cpu_gauge_->set(samples_.back().cpu_pct);
  if (mem_gauge_) mem_gauge_->set(samples_.back().mem_bytes);
  schedule_sample();
}

void Host::schedule_sample() {
  // schedule_on, not schedule: start_sampling() may be called from setup
  // code on island 0 while the host is pinned elsewhere; every subsequent
  // tick then stays island-local (real, cancellable ids).
  sample_event_ = sim_.schedule_on(island_, sim_.now() + sample_interval_,
                                   [this] {
    sample_event_ = 0;
    settle();
    double integral = busy_track_.integral(sim_.now());
    double mean_busy_cores = (integral - last_sample_busy_integral_) /
                             static_cast<double>(sample_interval_);
    last_sample_busy_integral_ = integral;
    samples_.push_back(ResourceSample{
        sim_.now(), 100.0 * mean_busy_cores / static_cast<double>(cores_),
        static_cast<double>(memory_bytes_)});
    if (cpu_gauge_) cpu_gauge_->set(samples_.back().cpu_pct);
    if (mem_gauge_) mem_gauge_->set(samples_.back().mem_bytes);
    schedule_sample();
  });
}

void Host::stop_sampling() {
  if (sample_event_) {
    sim_.cancel(sample_event_);
    sample_event_ = 0;
  }
}

}  // namespace rddr::sim
