// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// This is the substrate substituting for real machines and networks (see
// DESIGN.md): every test and benchmark in the repo runs on one `Simulator`
// instance, so runs replay byte-identically from a seed. Events scheduled
// for the same instant fire in scheduling order (FIFO tie-break), which is
// what makes the network FIFO guarantees below easy to uphold.
//
// The event loop is allocation-lean: callbacks live inline in a reusable
// slot table (InlineFunction small-buffer storage — no per-event heap
// allocation for typical captures), the ready queue is a plain binary heap
// of 24-byte entries, and cancellation is a generation check — O(1), no
// hash tables, no state retained for cancelled or fired ids.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"

namespace rddr::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Converts virtual time to seconds as a double (for reporting).
inline double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

/// Converts (fractional) seconds to virtual time.
inline Time from_seconds(double s) { return static_cast<Time>(s * 1e9); }

/// Event callback. Captures up to 48 bytes are stored inline (no heap
/// allocation on the schedule path); move-only captures are fine.
using EventFn = InlineFunction<48>;

/// Single-threaded event loop over virtual time.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now()).
  /// Returns a nonzero id usable with `cancel`.
  uint64_t schedule_at(Time t, EventFn fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  uint64_t schedule(Time delay, EventFn fn);

  /// Cancels a pending event: O(1), idempotent, and a no-op if the event
  /// already ran or was cancelled. Retains no per-id state either way.
  void cancel(uint64_t id);

  /// Runs the next pending event. Returns false when the queue is empty.
  bool step();

  /// Runs events until none remain or `max_events` were processed.
  /// Returns the number of events processed.
  size_t run_until_idle(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t);

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (exact: cancelled and fired events
  /// never count).
  size_t pending_events() const { return live_; }

  /// Id returned by the most recent schedule()/schedule_at() call, 0 if
  /// none yet. Lets the network batch same-tick deliveries only when no
  /// other event was interleaved (preserving global FIFO order exactly).
  uint64_t last_scheduled_id() const { return last_id_; }

 private:
  // Ready queue entry: 24 bytes, POD, ordered by (time, seq). The callback
  // stays in its slot so heap sift operations move only these.
  struct HeapEntry {
    Time time;
    uint64_t seq;   // FIFO tie-break for identical times
    uint32_t slot;  // index into slots_
    uint32_t gen;   // must match the slot's generation to be live
  };

  // Callback storage, reused via a free list. `gen` increments whenever
  // the slot is released (fire or cancel), invalidating stale heap entries
  // and stale ids in O(1).
  struct Slot {
    EventFn fn;
    uint32_t gen = 0;
    uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  static constexpr uint32_t kNilSlot = UINT32_MAX;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  uint32_t alloc_slot();
  void release_slot(uint32_t slot);
  void heap_push(const HeapEntry& e);
  HeapEntry heap_pop();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t last_id_ = 0;
  size_t live_ = 0;
  std::vector<HeapEntry> heap_;  // binary min-heap by (time, seq)
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;
};

}  // namespace rddr::sim
