// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// This is the substrate substituting for real machines and networks (see
// DESIGN.md): every test and benchmark in the repo runs on one `Simulator`
// instance, so runs replay byte-identically from a seed. Events scheduled
// for the same instant fire in scheduling order (FIFO tie-break), which is
// what makes the network FIFO guarantees below easy to uphold.
//
// The event loop is allocation-lean: callbacks live inline in a reusable
// slot table (InlineFunction small-buffer storage — no per-event heap
// allocation for typical captures), the ready queue is a plain binary heap
// of 24-byte entries, and cancellation is a generation check — O(1), no
// hash tables, no state retained for cancelled or fired ids.
//
// Islands (DESIGN.md "Parallel simulation"): the event loop can be
// partitioned into up to kMaxIslands independent sub-loops, each with its
// own heap, clock, slot table and sequence counter. Configure them with
// `configure_islands`; a ParallelExecutor (netsim/parallel.h) then runs
// the islands on worker threads under conservative time-window barriers,
// exchanging cross-island events through per-island outboxes that are
// merged in deterministic (time, source island, source order) order at
// each barrier. A simulator that never configures islands behaves exactly
// as the historical single-threaded loop — island 0 is the only island
// and every legacy entry point operates on it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/inline_function.h"

namespace rddr::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Converts virtual time to seconds as a double (for reporting).
inline double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

/// Converts (fractional) seconds to virtual time.
inline Time from_seconds(double s) { return static_cast<Time>(s * 1e9); }

/// Event callback. Captures up to 48 bytes are stored inline (no heap
/// allocation on the schedule path); move-only captures are fine.
using EventFn = InlineFunction<48>;

class ParallelExecutor;
struct ParallelOptions;

/// Event loop over virtual time; single-threaded per island.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time of the calling context's island.
  Time now() const { return cur().now; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now())
  /// on the current island. Returns a nonzero id usable with `cancel`.
  uint64_t schedule_at(Time t, EventFn fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  uint64_t schedule(Time delay, EventFn fn);

  /// Schedules `fn` at absolute time `t` on island `island`. On the
  /// current island this is exactly schedule_at. Cross-island schedules
  /// issued while a parallel window is executing are routed through the
  /// island's outbox and merged at the next barrier; those return 0 (they
  /// cannot be cancelled). `t` must respect the conservative lookahead —
  /// the executor clamps (and counts) violations.
  uint64_t schedule_on(IslandId island, Time t, EventFn fn);

  /// Schedules `fn` at absolute time `t` as a GLOBAL event: one that may
  /// mutate state shared by all islands (fault injection, partition
  /// state). Under a ParallelExecutor, global events run at a barrier
  /// with every worker parked and every island clock advanced to `t`;
  /// without one they are ordinary island-0 events. Must be called from
  /// setup or from another global event, never from inside a parallel
  /// window.
  void schedule_global_at(Time t, EventFn fn);

  /// Cancels a pending event: O(1), idempotent, and a no-op if the event
  /// already ran or was cancelled. Retains no per-id state either way.
  /// Ids encode their island, so cancelling another island's event is
  /// safe from sequential contexts (setup/teardown); never cancel a
  /// foreign island's event from inside a parallel window.
  void cancel(uint64_t id);

  /// Runs the next pending event. Returns false when the queue is empty.
  /// Under a ParallelExecutor this processes one conservative window
  /// (possibly many events) and returns whether anything ran.
  bool step();

  /// Runs events until none remain or `max_events` were processed.
  /// Returns the number of events processed.
  size_t run_until_idle(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock(s) to t.
  void run_until(Time t);

  /// Number of events executed so far across all islands (diagnostic).
  uint64_t events_executed() const;

  /// Number of events currently pending (exact: cancelled and fired events
  /// never count). Includes global events; excludes in-window outboxes.
  size_t pending_events() const;

  /// Id returned by the most recent schedule()/schedule_at() call on the
  /// current island, 0 if none yet. Lets the network batch same-tick
  /// deliveries only when no other event was interleaved (preserving
  /// island-local FIFO order exactly).
  uint64_t last_scheduled_id() const { return cur().last_id; }

  // ---- islands ----

  /// Partitions the loop into `count` islands (1..kMaxIslands). Island 0
  /// keeps everything scheduled so far; new islands start empty at the
  /// current time. With count >= 2 a ParallelExecutor is created and
  /// step()/run_until_idle()/run_until() drive conservative windows
  /// instead of the legacy loop. Call once, before running; `opts`
  /// carries lookahead and worker-thread knobs (see netsim/parallel.h).
  /// With count == 1 no executor is created — the loop stays the legacy
  /// single-threaded one — but islands_configured() still flips, which
  /// upper layers use to enable island-consistent semantics (so the
  /// 1-island run is a valid byte-identical oracle for N-island runs).
  void configure_islands(size_t count, const ParallelOptions& opts);
  void configure_islands(size_t count);

  /// True once configure_islands() ran (any count).
  bool islands_configured() const { return islands_configured_; }

  /// Number of islands (1 when never configured).
  size_t island_count() const { return islands_.size(); }

  /// Executor driving multi-island runs; nullptr when island_count()<=1.
  ParallelExecutor* executor() { return exec_.get(); }

  /// Events executed by one island (diagnostic / per-island gauges).
  uint64_t island_events_executed(IslandId i) const {
    return islands_[i]->executed;
  }

 private:
  friend class ParallelExecutor;

  // Ready queue entry: 24 bytes, POD, ordered by (time, seq). The callback
  // stays in its slot so heap sift operations move only these.
  struct HeapEntry {
    Time time;
    uint64_t seq;   // FIFO tie-break for identical times
    uint32_t slot;  // index into slots
    uint32_t gen;   // must match the slot's generation to be live
  };

  // Callback storage, reused via a free list. `gen` increments whenever
  // the slot is released (fire or cancel), invalidating stale heap entries
  // and stale ids in O(1).
  struct Slot {
    EventFn fn;
    uint32_t gen = 0;
    uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  // A cross-island event captured during a parallel window, merged into
  // its destination heap at the next barrier.
  struct OutMsg {
    Time time;
    IslandId dest;
    EventFn fn;
  };

  struct Island {
    Time now = 0;
    uint64_t next_seq = 0;
    uint64_t executed = 0;
    uint64_t last_id = 0;
    uint64_t window_events = 0;  // events run in the current window
    size_t live = 0;
    std::vector<HeapEntry> heap;  // binary min-heap by (time, seq)
    std::vector<Slot> slots;
    uint32_t free_head = kNilSlot;
    IslandId id = 0;
    std::vector<OutMsg> outbox;  // appended during windows, owner thread only
  };

  struct GlobalEvent {
    Time time;
    uint64_t seq;
    EventFn fn;
  };

  static constexpr uint32_t kNilSlot = UINT32_MAX;
  // Event-id layout: [63:58] island, [57:30] generation, [29:0] slot+1.
  static constexpr int kIdSlotBits = 30;
  static constexpr int kIdGenBits = 28;
  static constexpr uint64_t kIdSlotMask = (1ull << kIdSlotBits) - 1;
  static constexpr uint64_t kIdGenMask = (1ull << kIdGenBits) - 1;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Island bound to the calling context: current_island() clamped to the
  /// configured range, so stray thread-local state can never escape
  /// island 0 on an unconfigured simulator.
  Island& cur() const {
    IslandId i = current_island();
    return *islands_[i < islands_.size() ? i : 0];
  }

  uint32_t alloc_slot(Island& isl);
  void release_slot(Island& isl, uint32_t slot);
  void heap_push(Island& isl, const HeapEntry& e);
  HeapEntry heap_pop(Island& isl);
  uint64_t push_event(Island& isl, Time t, EventFn fn);
  /// Next live (non-cancelled) event time on `isl`, popping stale
  /// entries; kNoEvent when empty.
  Time next_live_time(Island& isl);
  bool step_island(Island& isl);
  /// Runs `isl`'s events with time < end (worker-thread entry point).
  size_t drain_island(Island& isl, Time end, size_t max_events);

  static constexpr Time kNoEvent = INT64_MAX;

  std::vector<std::unique_ptr<Island>> islands_;
  std::vector<GlobalEvent> global_;  // min-heap by (time, seq)
  uint64_t global_seq_ = 0;
  bool islands_configured_ = false;
  bool in_parallel_phase_ = false;  // set by the executor around windows
  std::unique_ptr<ParallelExecutor> exec_;
};

}  // namespace rddr::sim
