// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// This is the substrate substituting for real machines and networks (see
// DESIGN.md): every test and benchmark in the repo runs on one `Simulator`
// instance, so runs replay byte-identically from a seed. Events scheduled
// for the same instant fire in scheduling order (FIFO tie-break), which is
// what makes the network FIFO guarantees below easy to uphold.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rddr::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Converts virtual time to seconds as a double (for reporting).
inline double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

/// Converts (fractional) seconds to virtual time.
inline Time from_seconds(double s) { return static_cast<Time>(s * 1e9); }

/// Single-threaded event loop over virtual time.
class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now()).
  /// Returns an id usable with `cancel`.
  uint64_t schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  uint64_t schedule(Time delay, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(uint64_t id);

  /// Runs the next pending event. Returns false when the queue is empty.
  bool step();

  /// Runs events until none remain or `max_events` were processed.
  /// Returns the number of events processed.
  size_t run_until_idle(size_t max_events = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t);

  /// Number of events executed so far (diagnostic).
  uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time time;
    uint64_t seq;  // FIFO tie-break for identical times
    uint64_t id;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_map<uint64_t, std::function<void()>> handlers_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace rddr::sim
