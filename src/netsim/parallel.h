// Conservative parallel executor for the multi-island simulator.
//
// DESIGN.md "Parallel simulation" has the full story; the short version:
//
//   * The simulation is partitioned into islands (Simulator::configure_
//     islands). Each island is a fully single-threaded event loop.
//   * Execution proceeds in windows. A window starts at the earliest
//     pending event time `t` across islands and extends to
//     `t + lookahead`, where lookahead is the minimum cross-island link
//     latency (sampled from the options' provider at every barrier, so
//     latency faults are picked up, and clamped to a positive floor so
//     fault injection can never drive it to zero).
//   * Within a window every island runs independently on a worker
//     thread. Cross-island schedules are buffered in per-island outboxes
//     (owner-thread only — no locks on the hot path).
//   * At the barrier the coordinator merges all outboxes into the
//     destination heaps in (time, source island, source order) order —
//     a total order independent of thread interleaving, which is what
//     makes same-seed runs byte-identical at any island/thread count.
//   * Global events (fault injection mutating shared network state) are
//     executed between windows with every worker parked and every island
//     clock advanced to the event time; windows never span a pending
//     global event.
//
// Causality: an event sent during window [t, t+L) across islands carries
// at least the minimum cross-island latency L, so its delivery time is
// >= t+L — at or after the window edge, never inside a window another
// island is concurrently executing. The merge asserts this; in release
// builds violations are clamped to the window edge and counted
// (`causality_clamps`, exposed so tests can require it to be zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "netsim/simulator.h"

namespace rddr::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace rddr::obs

namespace rddr::sim {

struct ParallelOptions {
  /// Worker threads (including the coordinating caller). 0 = one per
  /// island, capped at std::thread::hardware_concurrency(). Thread count
  /// never affects results — only wall-clock.
  size_t threads = 0;

  /// Conservative lookahead floor in virtual nanoseconds. The effective
  /// lookahead each window is max(floor, lookahead_provider()); the floor
  /// guarantees forward progress even if a provider misbehaves.
  Time min_lookahead = 100;

  /// Samples the current safe lookahead (min cross-island link latency)
  /// at every barrier. Latency *faults* only ever add latency on top of
  /// the per-link base in this simulator, so the network's minimum base
  /// latency is a valid conservative bound; re-sampling every window
  /// still lets a provider tighten or relax it dynamically.
  std::function<Time()> lookahead_provider;

  /// Seed for the per-island RNG streams (island_rng()).
  uint64_t rng_seed = 0x15a4d5;
};

struct ParallelStats {
  uint64_t windows = 0;
  uint64_t merged_messages = 0;   // cross-island events exchanged
  uint64_t causality_clamps = 0;  // lookahead violations (should be 0)
  uint64_t global_events = 0;
  uint64_t barrier_stalls = 0;  // island-windows that had no work
  uint64_t total_events = 0;    // events executed inside windows
  uint64_t critical_path_events = 0;  // sum over windows of max per island
  Time current_lookahead = 0;

  /// Model speedup: how much faster than one core this run could go with
  /// unlimited cores — total events over the window critical path. This
  /// is a deterministic property of the partitioning (independent of the
  /// machine), which is what the bench scaling floors gate on.
  double model_speedup() const {
    return critical_path_events
               ? static_cast<double>(total_events) /
                     static_cast<double>(critical_path_events)
               : 1.0;
  }
};

/// Runs a multi-island Simulator under conservative time-window barriers.
/// Created by Simulator::configure_islands(count >= 2); not used directly.
class ParallelExecutor {
 public:
  ParallelExecutor(Simulator& sim, const ParallelOptions& opts);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Executes the next window (or pending global-event batch). Returns
  /// false when nothing is pending (or everything pending is beyond the
  /// current run_until limit).
  bool run_window();

  size_t run_until_idle(size_t max_events);
  void run_until(Time t);

  const ParallelStats& stats() const { return stats_; }
  size_t thread_count() const { return nthreads_; }

  /// Independent deterministic RNG stream for one island, forked from
  /// options.rng_seed. Island-count-invariant consumers should prefer
  /// their own per-component streams; this one is for island-scoped
  /// machinery (diagnostics, sampling).
  Rng& island_rng(IslandId island) { return rngs_[island]; }

  /// Publishes per-island observability into `reg` (updated at every
  /// barrier, from the coordinator — never from workers):
  ///   islands.events.<i>   counter  events executed by island i
  ///   islands.stalls       counter  empty island-windows
  ///   islands.windows      counter  barriers crossed
  ///   islands.merged       counter  cross-island events exchanged
  ///   islands.clamps       counter  causality clamps (should stay 0)
  ///   islands.lookahead_ns gauge    lookahead of the latest window
  void bind_metrics(obs::MetricsRegistry& reg);

 private:
  void worker_loop(size_t w);
  void drain_share(size_t w);
  void execute_window(Time end);
  void merge_outboxes(Time end);
  void run_global_batch();
  Time sample_lookahead();
  void publish_metrics();

  Simulator& sim_;
  ParallelOptions opts_;
  size_t nthreads_;
  Time limit_ = INT64_MAX;  // exclusive bound while inside run_until
  ParallelStats stats_;
  std::vector<Rng> rngs_;

  // Metrics handles (bound lazily; coordinator-only).
  std::vector<obs::Counter*> island_event_counters_;
  std::vector<uint64_t> published_events_;
  obs::Counter* stall_counter_ = nullptr;
  obs::Counter* window_counter_ = nullptr;
  obs::Counter* merged_counter_ = nullptr;
  obs::Counter* clamp_counter_ = nullptr;
  obs::Gauge* lookahead_gauge_ = nullptr;
  uint64_t published_stalls_ = 0;
  uint64_t published_windows_ = 0;
  uint64_t published_merged_ = 0;
  uint64_t published_clamps_ = 0;

  // Barrier state. The coordinator writes window_end_, then bumps epoch_
  // (release); workers observe the bump (acquire), drain their islands,
  // and count down pending_ (release); the coordinator waits for zero
  // (acquire). All shared mutable simulator state is only touched on one
  // side of those edges, which is what keeps the executor TSan-clean.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> pending_{0};
  std::atomic<bool> stop_{false};
  Time window_end_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace rddr::sim
